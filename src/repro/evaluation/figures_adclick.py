"""Figure 6: marginal estimation on the (synthetic) ad impression data.

The paper's figure 6 computes 1-way and 2-way marginals over nine Criteo
categorical features and reports the relative MSE of each marginal cell as a
function of the marginal's true size, for Unbiased Space Saving (built on
the disaggregated impressions) and priority sampling (given pre-aggregated
tuple counts).  The Criteo data cannot be redistributed, so the experiment
runs on :class:`~repro.streams.adclick.AdClickDataset`, a synthetic stream
with matching structure (nine skewed, correlated categorical features, one
row per impression); see DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.query.marginals import marginal_cells, one_way_marginal, two_way_marginal
from repro.sampling.priority import PrioritySample
from repro.streams.adclick import AdClickDataset

__all__ = ["MarginalEstimationExperiment", "MarginalEstimationResult"]


@dataclass
class MarginalSeries:
    """Bucketed relative MSE for one (marginal type, method) combination."""

    marginal: str
    method: str
    buckets: List[Tuple[float, float, int]]
    mean_relative_mse: float


@dataclass
class MarginalEstimationResult:
    """All series produced by the marginal estimation experiment."""

    series: List[MarginalSeries]

    def rows(self) -> List[Dict[str, object]]:
        """One row per (marginal type, method, size bucket)."""
        rows = []
        for entry in self.series:
            for upper_edge, relative_mse, cells in entry.buckets:
                rows.append(
                    {
                        "marginal": entry.marginal,
                        "method": entry.method,
                        "marginal_size_upper": upper_edge,
                        "relative_mse": relative_mse,
                        "num_cells": cells,
                    }
                )
        return rows

    def summary(self) -> Dict[str, float]:
        """Mean relative MSE keyed by ``marginal/method``."""
        return {
            f"{entry.marginal}/{entry.method}": entry.mean_relative_mse
            for entry in self.series
        }


def _bucketed_relative_mse(
    cells, bucket_edges: Sequence[float]
) -> List[Tuple[float, float, int]]:
    """Average relative MSE of marginal cells grouped by true marginal size."""
    edges = sorted(bucket_edges)
    sums = [0.0] * len(edges)
    counts = [0] * len(edges)
    for cell in cells:
        if cell.truth <= 0:
            continue
        value = cell.squared_error / (cell.truth**2)
        for index, edge in enumerate(edges):
            if cell.truth <= edge:
                sums[index] += value
                counts[index] += 1
                break
    return [
        (edge, sums[index] / counts[index] if counts[index] else 0.0, counts[index])
        for index, edge in enumerate(edges)
    ]


def _mean_relative_mse(cells) -> float:
    values = [
        cell.squared_error / (cell.truth**2) for cell in cells if cell.truth > 0
    ]
    return sum(values) / len(values) if values else 0.0


@dataclass
class MarginalEstimationExperiment:
    """Figure 6: 1-way and 2-way marginal accuracy, USS vs priority sampling.

    Parameters mirror the reproduction scale: ``num_rows`` impressions are
    generated once, the Unbiased Space Saving sketch ingests them row by row
    (keyed by the full feature tuple), and the priority sample is drawn from
    the exact pre-aggregated tuple counts.  Marginals are then group-bys over
    each method's retained estimates.
    """

    num_rows: int = 60_000
    capacity: int = 2_000
    one_way_feature: int = 1
    two_way_features: Tuple[int, int] = (1, 5)
    min_marginal_size: float = 10.0
    num_trials: int = 3
    seed: int = 0

    def run(self) -> MarginalEstimationResult:
        dataset = AdClickDataset(num_rows=self.num_rows, seed=self.seed)
        exact_tuples = dataset.tuple_counts()
        exact_one_way = dataset.marginal_counts(self.one_way_feature)
        exact_two_way = dataset.pairwise_counts(*self.two_way_features)
        bucket_edges = self._bucket_edges()

        one_way_cells: Dict[str, List] = {"unbiased_space_saving": [], "priority_sampling": []}
        two_way_cells: Dict[str, List] = {"unbiased_space_saving": [], "priority_sampling": []}

        for trial in range(self.num_trials):
            trial_seed = self.seed + 101 * (trial + 1)
            sketch = UnbiasedSpaceSaving(self.capacity, seed=trial_seed)
            for impression in dataset.impressions():
                sketch.update(impression)
            priority = PrioritySample(
                {key: float(value) for key, value in exact_tuples.items()},
                self.capacity,
                rng=random.Random(trial_seed + 1),
            )
            sources = {
                "unbiased_space_saving": sketch,
                "priority_sampling": priority,
            }
            for method, source in sources.items():
                estimated_one_way = one_way_marginal(source, self.one_way_feature)
                estimated_two_way = two_way_marginal(source, *self.two_way_features)
                one_way_cells[method].extend(
                    marginal_cells(
                        estimated_one_way, exact_one_way, min_truth=self.min_marginal_size
                    )
                )
                two_way_cells[method].extend(
                    marginal_cells(
                        estimated_two_way, exact_two_way, min_truth=self.min_marginal_size
                    )
                )

        series: List[MarginalSeries] = []
        for marginal_name, per_method in (
            ("one_way", one_way_cells),
            ("two_way", two_way_cells),
        ):
            for method, cells in per_method.items():
                series.append(
                    MarginalSeries(
                        marginal=marginal_name,
                        method=method,
                        buckets=_bucketed_relative_mse(cells, bucket_edges),
                        mean_relative_mse=_mean_relative_mse(cells),
                    )
                )
        return MarginalEstimationResult(series=series)

    def _bucket_edges(self) -> List[float]:
        """Geometric size buckets spanning tiny to whole-dataset marginals."""
        edges = []
        edge = max(self.min_marginal_size * 10, 100.0)
        while edge < self.num_rows:
            edges.append(edge)
            edge *= 4
        edges.append(float(self.num_rows))
        return edges
