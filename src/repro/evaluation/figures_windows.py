"""Windowed trending evaluation: sliding-window USS vs sliding-window Count-Min.

The windows subsystem opens the canonical monitoring workload — "what is
trending in the last ``H`` seconds?" — so this experiment measures how
well two pane specs answer it on *bursty* streams: a Zipf background with
injected traffic bursts (:class:`~repro.streams.generators.BurstSpec`).

For each burst the stream is played into both windowed sketches up to
the burst's end, then queried:

* **detection** — is the burst item in the window's top-``k``?
* **relative error** — of the burst item's windowed point estimate
  against the exact in-horizon count.

Unbiased Space Saving panes keep per-item unbiased counts in ``m`` bins;
Count-Min panes (same ``m`` as row width) pay hash-collision bias that
grows with the in-horizon traffic, which is exactly what the summary
surfaces.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.streams.generators import BurstSpec, timestamped_zipf_stream
from repro.windows.windowed import SlidingWindowSketch

__all__ = ["WindowedTrendingExperiment", "WindowedTrendingResult"]


@dataclass
class WindowedTrendingResult:
    """Per-burst detection/error rows for each windowed method."""

    records: List[Dict[str, object]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """One row per (trial, burst, method)."""
        return list(self.records)

    def summary(self) -> Dict[str, float]:
        """Detection rate and mean relative error per method."""
        summary: Dict[str, float] = {}
        methods = sorted({record["method"] for record in self.records})
        for method in methods:
            rows = [record for record in self.records if record["method"] == method]
            summary[f"{method}/detection_rate"] = float(
                np.mean([record["detected"] for record in rows])
            )
            summary[f"{method}/mean_relative_error"] = float(
                np.mean([record["relative_error"] for record in rows])
            )
        return summary


@dataclass
class WindowedTrendingExperiment:
    """Bursty-stream trending: windowed USS vs windowed Count-Min.

    Parameters mirror the other experiments' scale knobs; ``capacity`` is
    both the USS pane bin budget and the Count-Min pane row width, so the
    two methods spend comparable per-pane space.
    """

    num_rows: int = 20_000
    num_items: int = 1_000
    exponent: float = 1.1
    duration: float = 600.0
    horizon: float = 120.0
    pane: float = 30.0
    capacity: int = 128
    top_k: int = 10
    num_bursts: int = 4
    burst_rows: int = 600
    burst_duration: float = 20.0
    num_trials: int = 3
    seed: int = 0

    def _bursts(self) -> List[BurstSpec]:
        # Space burst starts evenly through the stream, clear of the edges.
        starts = np.linspace(
            self.duration * 0.15, self.duration * 0.85, self.num_bursts
        )
        return [
            BurstSpec(
                item=f"burst_{index}",
                at=float(start),
                duration=self.burst_duration,
                rows=self.burst_rows,
            )
            for index, start in enumerate(starts)
        ]

    def run(self) -> WindowedTrendingResult:
        result = WindowedTrendingResult()
        bursts = self._bursts()
        for trial in range(self.num_trials):
            rng = np.random.default_rng(self.seed + trial)
            rows = timestamped_zipf_stream(
                self.num_rows,
                num_items=self.num_items,
                exponent=self.exponent,
                duration=self.duration,
                bursts=bursts,
                rng=rng,
            )
            sketches = {
                "windowed_uss": SlidingWindowSketch(
                    self.capacity,
                    horizon=self.horizon,
                    pane=self.pane,
                    seed=self.seed + trial,
                ),
                "windowed_countmin": SlidingWindowSketch(
                    self.capacity,
                    horizon=self.horizon,
                    pane=self.pane,
                    spec="countmin",
                    seed=self.seed + trial,
                ),
            }
            timestamps = [row[2] for row in rows]
            cursor = 0
            for burst in sorted(bursts, key=lambda b: b.at):
                query_time = burst.at + burst.duration
                stop = bisect_right(timestamps, query_time)
                chunk = rows[cursor:stop]
                for sketch in sketches.values():
                    sketch.extend(chunk)
                cursor = stop
                # Exact in-horizon count of the burst item at query time.
                reference = sketches["windowed_uss"]
                active = reference.active_window_index
                horizon_start = (
                    reference.origin
                    + (active - reference.num_panes + 1) * reference.pane_seconds
                )
                truth = sum(
                    1
                    for item, _, ts in rows[:stop]
                    if item == burst.item and ts >= horizon_start
                )
                for method, sketch in sketches.items():
                    estimate = sketch.estimate(burst.item)
                    detected = any(
                        item == burst.item for item, _ in sketch.top_k(self.top_k)
                    )
                    result.records.append({
                        "trial": trial,
                        "method": method,
                        "burst": burst.item,
                        "query_time": query_time,
                        "truth": float(truth),
                        "estimate": float(estimate),
                        "relative_error": (
                            abs(estimate - truth) / truth if truth else 0.0
                        ),
                        "detected": bool(detected),
                    })
        return result
