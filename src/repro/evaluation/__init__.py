"""Evaluation harness: metrics, Monte-Carlo runner and per-figure experiments."""

from repro.evaluation.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.evaluation.figures_adclick import MarginalEstimationExperiment
from repro.evaluation.figures_iid import (
    InclusionProbabilityExperiment,
    PriorityComparisonExperiment,
    SubsetSumErrorExperiment,
)
from repro.evaluation.figures_pathological import (
    CoverageExperiment,
    EpochErrorExperiment,
    MergeProfileExperiment,
    SortedStreamStudy,
    TwoHalfStreamExperiment,
    VarianceAccuracyExperiment,
)
from repro.evaluation.metrics import (
    bias,
    binned_relative_error,
    empirical_inclusion_probability,
    mean_squared_error,
    relative_bias,
    relative_efficiency,
    relative_mse,
    relative_rmse,
    root_mean_squared_error,
)
from repro.evaluation.reporting import (
    format_series,
    format_summary,
    format_table,
    print_experiment,
)
from repro.evaluation.runner import (
    TrialResult,
    build_bottom_k,
    build_deterministic_sketch,
    build_unbiased_sketch,
    draw_priority_sample,
    random_item_subsets,
    run_trials,
)

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "MarginalEstimationExperiment",
    "InclusionProbabilityExperiment",
    "PriorityComparisonExperiment",
    "SubsetSumErrorExperiment",
    "CoverageExperiment",
    "EpochErrorExperiment",
    "MergeProfileExperiment",
    "SortedStreamStudy",
    "TwoHalfStreamExperiment",
    "VarianceAccuracyExperiment",
    "bias",
    "binned_relative_error",
    "empirical_inclusion_probability",
    "mean_squared_error",
    "relative_bias",
    "relative_efficiency",
    "relative_mse",
    "relative_rmse",
    "root_mean_squared_error",
    "format_series",
    "format_summary",
    "format_table",
    "print_experiment",
    "TrialResult",
    "build_bottom_k",
    "build_deterministic_sketch",
    "build_unbiased_sketch",
    "draw_priority_sample",
    "random_item_subsets",
    "run_trials",
]
