"""Experiments on non-i.i.d. streams: figures 1, 7, 8, 9 and 10.

These are the experiments where the difference between Deterministic and
Unbiased Space Saving appears: merge behaviour (figure 1), a stream whose
two halves have disjoint item populations (figure 7) and an ascending
frequency-sorted stream queried per epoch (figures 8-10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.merge import merge_misra_gries, merge_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import coverage, normal_confidence_interval, poisson_pps_variance
from repro.evaluation.metrics import empirical_inclusion_probability, relative_rmse
from repro.evaluation.runner import random_item_subsets
from repro.streams.epochs import EpochPartition
from repro.streams.frequency import FrequencyModel, scaled_weibull_counts
from repro.streams.generators import iterate_rows
from repro.streams.pathological import sorted_stream, two_half_stream

__all__ = [
    "MergeProfileExperiment",
    "TwoHalfStreamExperiment",
    "SortedStreamStudy",
    "CoverageExperiment",
    "VarianceAccuracyExperiment",
    "EpochErrorExperiment",
]


# ----------------------------------------------------------------------
# Figure 1 — merge behaviour: Misra-Gries vs unbiased merge
# ----------------------------------------------------------------------
@dataclass
class MergeProfileResult:
    """Sorted bin-count profiles after the two merge strategies."""

    misra_gries_profile: List[float]
    unbiased_profile: List[float]
    combined_total: float

    def rows(self) -> List[Dict[str, object]]:
        """One row per bin rank with both profiles (shorter one padded with 0)."""
        length = max(len(self.misra_gries_profile), len(self.unbiased_profile))
        rows = []
        for rank in range(length):
            rows.append(
                {
                    "bin_rank": rank,
                    "misra_gries_count": self.misra_gries_profile[rank]
                    if rank < len(self.misra_gries_profile)
                    else 0.0,
                    "unbiased_count": self.unbiased_profile[rank]
                    if rank < len(self.unbiased_profile)
                    else 0.0,
                }
            )
        return rows

    def summary(self) -> Dict[str, float]:
        """Total mass retained by each merge relative to the combined total."""
        return {
            "combined_total": self.combined_total,
            "misra_gries_total": float(sum(self.misra_gries_profile)),
            "unbiased_total": float(sum(self.unbiased_profile)),
        }


@dataclass
class MergeProfileExperiment:
    """Figure 1: how the two merge strategies redistribute bin mass.

    Two sketches are built on two disjoint halves of a skewed item universe
    and merged both ways.  The Misra-Gries merge truncates the tail (total
    mass shrinks); the unbiased merge preserves the expected total by moving
    tail mass onto the retained bins.
    """

    num_items_per_half: int = 400
    target_total_per_half: int = 30_000
    shape: float = 0.3
    capacity: int = 100
    seed: int = 0

    def run(self) -> MergeProfileResult:
        first_model = scaled_weibull_counts(
            num_items=self.num_items_per_half,
            shape=self.shape,
            target_total=self.target_total_per_half,
        )
        second_counts = {
            item + self.num_items_per_half: count
            for item, count in scaled_weibull_counts(
                num_items=self.num_items_per_half,
                shape=self.shape,
                target_total=self.target_total_per_half,
            ).counts.items()
        }
        second_model = FrequencyModel(counts=second_counts, name="second-half")

        rng = np.random.default_rng(self.seed)
        unbiased_sketches = []
        deterministic_sketches = []
        for index, model in enumerate((first_model, second_model)):
            stream = list(iterate_rows(sorted_stream(model, ascending=False)))
            rng.shuffle(stream)
            unbiased = UnbiasedSpaceSaving(self.capacity, seed=self.seed + index)
            deterministic = DeterministicSpaceSaving(self.capacity, seed=self.seed + index)
            for row in stream:
                unbiased.update(row)
                deterministic.update(row)
            unbiased_sketches.append(unbiased)
            deterministic_sketches.append(deterministic)

        misra_gries = merge_misra_gries(
            deterministic_sketches[0], deterministic_sketches[1], capacity=self.capacity
        )
        unbiased = merge_unbiased(
            unbiased_sketches[0],
            unbiased_sketches[1],
            capacity=self.capacity,
            seed=self.seed,
        )
        return MergeProfileResult(
            misra_gries_profile=sorted(misra_gries.values(), reverse=True),
            unbiased_profile=sorted(unbiased.estimates().values(), reverse=True),
            combined_total=float(first_model.total + second_model.total),
        )


# ----------------------------------------------------------------------
# Figure 7 — the two-half pathological stream
# ----------------------------------------------------------------------
@dataclass
class TwoHalfStreamResult:
    """Inclusion probabilities and per-half errors for both sketches."""

    inclusion_first_half: Dict[str, float]
    inclusion_second_half: Dict[str, float]
    rrmse_first_half: Dict[str, float]
    rrmse_second_half: Dict[str, float]

    def rows(self) -> List[Dict[str, object]]:
        """One row per (half, method) with inclusion and error figures."""
        rows = []
        for half, inclusion, rrmse in (
            ("first_half", self.inclusion_first_half, self.rrmse_first_half),
            ("second_half", self.inclusion_second_half, self.rrmse_second_half),
        ):
            for method in inclusion:
                rows.append(
                    {
                        "half": half,
                        "method": method,
                        "mean_inclusion_probability": inclusion[method],
                        "subset_rrmse": rrmse[method],
                    }
                )
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline comparison: error on first-half queries, both methods."""
        return {
            "unbiased_rrmse_first_half": self.rrmse_first_half["unbiased_space_saving"],
            "deterministic_rrmse_first_half": self.rrmse_first_half[
                "deterministic_space_saving"
            ],
            "unbiased_inclusion_first_half": self.inclusion_first_half[
                "unbiased_space_saving"
            ],
            "deterministic_inclusion_first_half": self.inclusion_first_half[
                "deterministic_space_saving"
            ],
        }


@dataclass
class TwoHalfStreamExperiment:
    """Figure 7: items seen only in the first half of the stream.

    The stream consists of two independent exchangeable halves over disjoint
    item ranges.  Deterministic Space Saving forgets all but the most
    frequent first-half items; Unbiased Space Saving keeps sampling them with
    PPS-like probabilities, so first-half subset sums stay accurate.
    """

    num_items_per_half: int = 500
    target_total_per_half: int = 50_000
    shape: float = 0.3
    capacity: int = 100
    num_trials: int = 10
    subset_size: int = 50
    num_subsets: int = 20
    seed: int = 0

    def run(self) -> TwoHalfStreamResult:
        first_model = scaled_weibull_counts(
            num_items=self.num_items_per_half,
            shape=self.shape,
            target_total=self.target_total_per_half,
        )
        second_model = FrequencyModel(
            counts={
                item + self.num_items_per_half: count
                for item, count in scaled_weibull_counts(
                    num_items=self.num_items_per_half,
                    shape=self.shape,
                    target_total=self.target_total_per_half,
                ).counts.items()
            },
            name="second-half",
        )
        combined_counts = dict(first_model.counts)
        combined_counts.update(second_model.counts)
        combined = FrequencyModel(counts=combined_counts, name="two-half")

        first_items = set(first_model.counts)
        second_items = set(second_model.counts)
        first_subsets = random_item_subsets(
            first_model, self.num_subsets, self.subset_size, seed=self.seed
        )
        second_subsets = random_item_subsets(
            second_model, self.num_subsets, self.subset_size, seed=self.seed + 1
        )

        retained: Dict[str, List[set]] = {
            "unbiased_space_saving": [],
            "deterministic_space_saving": [],
        }
        estimates: Dict[Tuple[str, str], List[float]] = {}
        truths: Dict[str, List[float]] = {"first_half": [], "second_half": []}
        for subset in first_subsets:
            truths["first_half"].append(float(combined.subset_total(subset)))
        for subset in second_subsets:
            truths["second_half"].append(float(combined.subset_total(subset)))

        for trial in range(self.num_trials):
            rng = np.random.default_rng(self.seed + trial)
            stream, _ = two_half_stream(first_model, second_model, rng=rng)
            unbiased = UnbiasedSpaceSaving(self.capacity, seed=self.seed + trial)
            deterministic = DeterministicSpaceSaving(self.capacity, seed=self.seed + trial)
            for row in iterate_rows(stream):
                unbiased.update(row)
                deterministic.update(row)
            sketches = {
                "unbiased_space_saving": unbiased,
                "deterministic_space_saving": deterministic,
            }
            for method, sketch in sketches.items():
                sketch_estimates = sketch.estimates()
                retained[method].append(set(sketch_estimates))
                for half, subsets in (
                    ("first_half", first_subsets),
                    ("second_half", second_subsets),
                ):
                    for subset in subsets:
                        subset_set = set(subset)
                        estimates.setdefault((method, half), []).append(
                            float(
                                sum(
                                    value
                                    for item, value in sketch_estimates.items()
                                    if item in subset_set
                                )
                            )
                        )

        inclusion_first: Dict[str, float] = {}
        inclusion_second: Dict[str, float] = {}
        rrmse_first: Dict[str, float] = {}
        rrmse_second: Dict[str, float] = {}
        for method in retained:
            first_probabilities = empirical_inclusion_probability(
                retained[method], sorted(first_items)
            )
            second_probabilities = empirical_inclusion_probability(
                retained[method], sorted(second_items)
            )
            inclusion_first[method] = float(np.mean(list(first_probabilities.values())))
            inclusion_second[method] = float(np.mean(list(second_probabilities.values())))
            rrmse_first[method] = relative_rmse(
                estimates[(method, "first_half")],
                truths["first_half"] * self.num_trials,
            )
            rrmse_second[method] = relative_rmse(
                estimates[(method, "second_half")],
                truths["second_half"] * self.num_trials,
            )
        return TwoHalfStreamResult(
            inclusion_first_half=inclusion_first,
            inclusion_second_half=inclusion_second,
            rrmse_first_half=rrmse_first,
            rrmse_second_half=rrmse_second,
        )


# ----------------------------------------------------------------------
# Figures 8-10 — ascending frequency-sorted stream, queried per epoch
# ----------------------------------------------------------------------
@dataclass
class SortedStreamStudy:
    """Shared Monte-Carlo study behind figures 8, 9 and 10.

    The item universe is split into ``num_epochs`` equal groups by frequency
    rank; the stream presents items grouped and sorted ascending by
    frequency (the worst case for Unbiased Space Saving).  Each trial builds
    an Unbiased and a Deterministic Space Saving sketch and records, per
    epoch: the subset sum estimate, the equation-5 variance estimate, and
    the truth.
    """

    num_items: int = 2000
    target_total: int = 200_000
    shape: float = 0.3
    capacity: int = 200
    num_epochs: int = 10
    num_trials: int = 10
    confidence: float = 0.95
    seed: int = 0

    #: populated by :meth:`run`
    epoch_truths: List[float] = field(default_factory=list, init=False)
    unbiased_estimates: List[List[float]] = field(default_factory=list, init=False)
    unbiased_variances: List[List[float]] = field(default_factory=list, init=False)
    deterministic_estimates: List[List[float]] = field(default_factory=list, init=False)

    def run(self) -> "SortedStreamStudy":
        model = scaled_weibull_counts(
            num_items=self.num_items, shape=self.shape, target_total=self.target_total
        )
        partition = EpochPartition(model, self.num_epochs, ascending=True)
        predicates = partition.predicates()
        self.epoch_truths = [float(total) for total in partition.true_totals()]
        self.unbiased_estimates = [[] for _ in range(self.num_epochs)]
        self.unbiased_variances = [[] for _ in range(self.num_epochs)]
        self.deterministic_estimates = [[] for _ in range(self.num_epochs)]
        stream = list(iterate_rows(sorted_stream(model, ascending=True)))
        for trial in range(self.num_trials):
            unbiased = UnbiasedSpaceSaving(self.capacity, seed=self.seed + trial)
            deterministic = DeterministicSpaceSaving(
                self.capacity, seed=self.seed + trial
            )
            for row in stream:
                unbiased.update(row)
                deterministic.update(row)
            for epoch, predicate in enumerate(predicates):
                with_error = unbiased.subset_sum_with_error(predicate)
                self.unbiased_estimates[epoch].append(with_error.estimate)
                self.unbiased_variances[epoch].append(with_error.variance)
                self.deterministic_estimates[epoch].append(
                    float(
                        sum(
                            value
                            for item, value in deterministic.estimates().items()
                            if predicate(item)
                        )
                    )
                )
        self._partition = partition
        self._model = model
        return self

    # -- views used by the per-figure experiments -------------------------
    def coverage_by_epoch(self) -> List[float]:
        """Empirical coverage of the Normal confidence intervals per epoch."""
        results = []
        for epoch in range(self.num_epochs):
            intervals = [
                normal_confidence_interval(estimate, variance, self.confidence)
                for estimate, variance in zip(
                    self.unbiased_estimates[epoch], self.unbiased_variances[epoch]
                )
            ]
            results.append(
                coverage(intervals, [self.epoch_truths[epoch]] * len(intervals))
            )
        return results

    def mean_ci_width_by_epoch(self) -> List[float]:
        """Average confidence-interval width per epoch."""
        widths = []
        for epoch in range(self.num_epochs):
            epoch_widths = [
                high - low
                for low, high in (
                    normal_confidence_interval(estimate, variance, self.confidence)
                    for estimate, variance in zip(
                        self.unbiased_estimates[epoch], self.unbiased_variances[epoch]
                    )
                )
            ]
            widths.append(float(np.mean(epoch_widths)))
        return widths

    def stddev_ratio_by_epoch(self) -> List[float]:
        """Mean estimated stddev divided by the empirical stddev, per epoch."""
        ratios = []
        for epoch in range(self.num_epochs):
            estimated = float(
                np.mean([math.sqrt(v) for v in self.unbiased_variances[epoch]])
            )
            empirical = float(np.std(self.unbiased_estimates[epoch]))
            ratios.append(estimated / empirical if empirical > 0 else float("inf"))
        return ratios

    def pps_stddev_ratio_by_epoch(self) -> List[float]:
        """Empirical stddev divided by the Poisson PPS stddev, per epoch."""
        alpha = self._model.total / self.capacity
        ratios = []
        for epoch in range(self.num_epochs):
            empirical = float(np.std(self.unbiased_estimates[epoch]))
            epoch_counts = [
                float(self._model.count(item))
                for item in self._partition.members(epoch)
            ]
            pps_std = math.sqrt(poisson_pps_variance(epoch_counts, alpha))
            ratios.append(empirical / pps_std if pps_std > 0 else float("inf"))
        return ratios

    def rrmse_by_epoch(self, method: str) -> List[float]:
        """Percent RRMSE per epoch for ``"unbiased"`` or ``"deterministic"``."""
        estimates = (
            self.unbiased_estimates if method == "unbiased" else self.deterministic_estimates
        )
        results = []
        for epoch in range(self.num_epochs):
            truth = self.epoch_truths[epoch]
            rrmse = relative_rmse(estimates[epoch], [truth] * len(estimates[epoch]))
            results.append(100.0 * rrmse)
        return results


@dataclass
class CoverageExperiment:
    """Figure 8: per-epoch truths, CI widths and empirical coverage."""

    study: Optional[SortedStreamStudy] = None

    def run(self) -> Dict[str, List[float]]:
        study = self.study or SortedStreamStudy()
        if not study.epoch_truths:
            study.run()
        return {
            "epoch_truths": list(study.epoch_truths),
            "mean_ci_width": study.mean_ci_width_by_epoch(),
            "coverage": study.coverage_by_epoch(),
        }


@dataclass
class VarianceAccuracyExperiment:
    """Figure 9: estimated vs empirical stddev, and empirical vs PPS stddev."""

    study: Optional[SortedStreamStudy] = None

    def run(self) -> Dict[str, List[float]]:
        study = self.study or SortedStreamStudy()
        if not study.epoch_truths:
            study.run()
        return {
            "stddev_overestimation": study.stddev_ratio_by_epoch(),
            "pathological_vs_pps_stddev": study.pps_stddev_ratio_by_epoch(),
        }


@dataclass
class EpochErrorExperiment:
    """Figure 10: percent RRMSE per epoch, Deterministic vs Unbiased."""

    study: Optional[SortedStreamStudy] = None

    def run(self) -> Dict[str, List[float]]:
        study = self.study or SortedStreamStudy()
        if not study.epoch_truths:
            study.run()
        return {
            "deterministic_pct_rrmse": study.rrmse_by_epoch("deterministic"),
            "unbiased_pct_rrmse": study.rrmse_by_epoch("unbiased"),
        }
