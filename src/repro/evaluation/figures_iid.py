"""Experiments on exchangeable (i.i.d.-like) streams: figures 2-5.

Each experiment class mirrors one figure of the paper's evaluation section.
They share a scale parameterization (number of items, target stream length,
sketch capacity, trial count) so that the same code can run at quick test
sizes, at the default benchmark sizes, or — given time — at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._typing import Item
from repro.evaluation.metrics import (
    binned_relative_error,
    empirical_inclusion_probability,
    mean_squared_error,
    quantiles,
    relative_rmse,
)
from repro.evaluation.runner import (
    build_bottom_k,
    build_unbiased_sketch,
    draw_priority_sample,
    random_item_subsets,
)
from repro.sampling.pps import inclusion_probabilities
from repro.streams.frequency import (
    FrequencyModel,
    geometric_counts,
    scaled_weibull_counts,
)

__all__ = [
    "InclusionProbabilityExperiment",
    "SubsetSumErrorExperiment",
    "PriorityComparisonExperiment",
    "default_figure3_distributions",
]


# ----------------------------------------------------------------------
# Figure 2 — empirical vs theoretical PPS inclusion probabilities
# ----------------------------------------------------------------------
@dataclass
class InclusionProbabilityResult:
    """Per-item inclusion probabilities, empirical and theoretical."""

    items: List[Item]
    counts: List[int]
    theoretical: List[float]
    empirical: List[float]

    def rows(self) -> List[Dict[str, object]]:
        """One row per item: count, theoretical and empirical probability."""
        return [
            {
                "item": item,
                "count": count,
                "theoretical_pps": theoretical,
                "empirical": empirical,
            }
            for item, count, theoretical, empirical in zip(
                self.items, self.counts, self.theoretical, self.empirical
            )
        ]

    def summary(self) -> Dict[str, float]:
        """Agreement diagnostics between the two probability curves."""
        theoretical = np.asarray(self.theoretical)
        empirical = np.asarray(self.empirical)
        deviation = np.abs(theoretical - empirical)
        correlation = (
            float(np.corrcoef(theoretical, empirical)[0, 1])
            if theoretical.std() > 0 and empirical.std() > 0
            else 1.0
        )
        return {
            "mean_abs_deviation": float(deviation.mean()),
            "max_abs_deviation": float(deviation.max()),
            "correlation": correlation,
        }


@dataclass
class InclusionProbabilityExperiment:
    """Figure 2: the sketch's inclusion probabilities match a PPS sample.

    A Weibull(shape=0.15)-shaped item universe is streamed in random order
    into an Unbiased Space Saving sketch many times; the fraction of runs in
    which each item is retained is compared with the thresholded PPS
    inclusion probability computed from the true counts.
    """

    num_items: int = 1000
    shape: float = 0.15
    target_total: int = 100_000
    capacity: int = 100
    num_trials: int = 20
    seed: int = 0

    def run(self) -> InclusionProbabilityResult:
        model = scaled_weibull_counts(
            num_items=self.num_items, shape=self.shape, target_total=self.target_total
        )
        counts = {item: float(count) for item, count in model.counts.items()}
        theoretical = inclusion_probabilities(counts, self.capacity)
        retained_sets = []
        for trial in range(self.num_trials):
            sketch = build_unbiased_sketch(
                model, self.capacity, seed=self.seed + trial
            )
            retained_sets.append(set(sketch.estimates()))
        empirical = empirical_inclusion_probability(retained_sets, model.items())
        items = model.items()
        return InclusionProbabilityResult(
            items=items,
            counts=[model.count(item) for item in items],
            theoretical=[theoretical[item] for item in items],
            empirical=[empirical[item] for item in items],
        )


# ----------------------------------------------------------------------
# Figures 3 & 4 — subset sum error vs true count, several distributions
# ----------------------------------------------------------------------
def default_figure3_distributions(target_total: int = 100_000) -> List[Tuple[str, Callable[[], FrequencyModel]]]:
    """The three frequency distributions of figures 3 and 4.

    ``Weibull(5e5, 0.32)``, ``Geometric(0.03)`` and ``Weibull(5e5, 0.15)``
    in the paper; reproduced shape-for-shape at a configurable total.
    """
    return [
        (
            "weibull_0.32",
            lambda: scaled_weibull_counts(num_items=1000, shape=0.32, target_total=target_total),
        ),
        ("geometric_0.03", lambda: geometric_counts(num_items=1000, success_probability=0.03)),
        (
            "weibull_0.15",
            lambda: scaled_weibull_counts(num_items=1000, shape=0.15, target_total=target_total),
        ),
    ]


@dataclass
class SubsetErrorSeries:
    """Smoothed error-vs-true-count series for one (distribution, method) pair."""

    distribution: str
    method: str
    buckets: List[Tuple[float, float, int]]
    overall_rrmse: float


@dataclass
class SubsetSumErrorResult:
    """All series produced by a :class:`SubsetSumErrorExperiment` run."""

    series: List[SubsetErrorSeries]

    def rows(self) -> List[Dict[str, object]]:
        """One row per (distribution, method, bucket)."""
        rows = []
        for entry in self.series:
            for center, error, size in entry.buckets:
                rows.append(
                    {
                        "distribution": entry.distribution,
                        "method": entry.method,
                        "true_count_bucket": center,
                        "mean_relative_error": error,
                        "num_queries": size,
                    }
                )
        return rows

    def summary(self) -> Dict[str, float]:
        """Overall RRMSE keyed by ``distribution/method``."""
        return {
            f"{entry.distribution}/{entry.method}": entry.overall_rrmse
            for entry in self.series
        }

    def method_rrmse(self, distribution: str, method: str) -> float:
        """Overall RRMSE for one series (raises KeyError when absent)."""
        return self.summary()[f"{distribution}/{method}"]


def _collect_subset_estimates(
    model: FrequencyModel,
    subsets: Sequence[Sequence[Item]],
    capacity: int,
    num_trials: int,
    seed: int,
    include_bottom_k: bool,
) -> Dict[str, Tuple[List[float], List[float]]]:
    """Run all trials and flatten (estimate, truth) pairs per method."""
    truths_per_subset = [float(model.subset_total(subset)) for subset in subsets]
    collected: Dict[str, Tuple[List[float], List[float]]] = {
        "unbiased_space_saving": ([], []),
        "priority_sampling": ([], []),
    }
    if include_bottom_k:
        collected["bottom_k"] = ([], [])
    subset_sets = [set(subset) for subset in subsets]
    for trial in range(num_trials):
        trial_seed = seed + trial * 1009
        sketch = build_unbiased_sketch(model, capacity, seed=trial_seed)
        priority = draw_priority_sample(model, capacity, seed=trial_seed + 1)
        estimators = {
            "unbiased_space_saving": sketch.estimates(),
            "priority_sampling": priority.estimates(),
        }
        if include_bottom_k:
            bottom = build_bottom_k(model, capacity, seed=trial_seed + 2)
            estimators["bottom_k"] = bottom.estimates()
        for method, estimates in estimators.items():
            method_estimates, method_truths = collected[method]
            for subset, truth in zip(subset_sets, truths_per_subset):
                estimate = sum(
                    value for item, value in estimates.items() if item in subset
                )
                method_estimates.append(float(estimate))
                method_truths.append(truth)
    return collected


@dataclass
class SubsetSumErrorExperiment:
    """Figures 3 and 4: relative error of random subset sums vs true count.

    Random 100-item subsets are queried against Unbiased Space Saving (built
    on the disaggregated stream), priority sampling (given the pre-aggregated
    counts) and optionally bottom-k uniform item sampling.  With 200 bins and
    no bottom-k this is figure 3; with 100 bins and bottom-k included it is
    figure 4, where uniform sampling loses by orders of magnitude on the
    skewed distributions.
    """

    capacity: int = 200
    subset_size: int = 100
    num_subsets: int = 30
    num_trials: int = 5
    target_total: int = 100_000
    include_bottom_k: bool = False
    num_buckets: int = 8
    seed: int = 0
    distributions: Optional[List[Tuple[str, Callable[[], FrequencyModel]]]] = None

    def run(self) -> SubsetSumErrorResult:
        distributions = self.distributions or default_figure3_distributions(self.target_total)
        series: List[SubsetErrorSeries] = []
        for index, (name, factory) in enumerate(distributions):
            model = factory()
            subsets = random_item_subsets(
                model, self.num_subsets, self.subset_size, seed=self.seed + index
            )
            collected = _collect_subset_estimates(
                model,
                subsets,
                self.capacity,
                self.num_trials,
                self.seed + 31 * index,
                self.include_bottom_k,
            )
            for method, (estimates, truths) in collected.items():
                series.append(
                    SubsetErrorSeries(
                        distribution=name,
                        method=method,
                        buckets=binned_relative_error(
                            truths, estimates, num_bins=self.num_buckets
                        ),
                        overall_rrmse=relative_rmse(estimates, truths),
                    )
                )
        return SubsetSumErrorResult(series=series)


# ----------------------------------------------------------------------
# Figure 5 — per-subset comparison against priority sampling
# ----------------------------------------------------------------------
@dataclass
class PriorityComparisonResult:
    """Per-subset relative MSE pairs and the relative-efficiency distribution."""

    per_subset: List[Dict[str, float]]
    efficiency_quantiles: Dict[float, float]

    def rows(self) -> List[Dict[str, object]]:
        """One row per subset with both methods' relative MSE."""
        return [dict(entry) for entry in self.per_subset]

    def summary(self) -> Dict[str, float]:
        """Median relative efficiency and the fraction of subsets where USS wins."""
        wins = sum(
            1
            for entry in self.per_subset
            if entry["unbiased_relative_mse"] <= entry["priority_relative_mse"]
        )
        summary = {
            "fraction_subsets_unbiased_wins_or_ties": wins / max(1, len(self.per_subset)),
            "median_relative_efficiency": self.efficiency_quantiles.get(0.5, 1.0),
        }
        return summary


@dataclass
class PriorityComparisonExperiment:
    """Figure 5: Unbiased Space Saving vs priority sampling, subset by subset.

    For every random subset the relative MSE of both methods over repeated
    trials is recorded (the scatter of the left panel) and the ratio
    ``Var(priority)/Var(USS)`` summarized (the right panel).  The paper's
    surprising finding — the sketch matches or beats priority sampling even
    though the latter uses pre-aggregated data — should manifest as a median
    relative efficiency at or above roughly 1.
    """

    shape: float = 0.15
    num_items: int = 1000
    target_total: int = 100_000
    capacity: int = 100
    subset_size: int = 100
    num_subsets: int = 40
    num_trials: int = 10
    seed: int = 0

    def run(self) -> PriorityComparisonResult:
        model = scaled_weibull_counts(
            num_items=self.num_items, shape=self.shape, target_total=self.target_total
        )
        subsets = random_item_subsets(
            model, self.num_subsets, self.subset_size, seed=self.seed
        )
        subset_sets = [set(subset) for subset in subsets]
        truths = [float(model.subset_total(subset)) for subset in subsets]
        unbiased_estimates: List[List[float]] = [[] for _ in subsets]
        priority_estimates: List[List[float]] = [[] for _ in subsets]
        for trial in range(self.num_trials):
            trial_seed = self.seed + 7919 * (trial + 1)
            sketch = build_unbiased_sketch(model, self.capacity, seed=trial_seed)
            priority = draw_priority_sample(model, self.capacity, seed=trial_seed + 1)
            sketch_estimates = sketch.estimates()
            sample_estimates = priority.estimates()
            for index, subset in enumerate(subset_sets):
                unbiased_estimates[index].append(
                    float(
                        sum(v for item, v in sketch_estimates.items() if item in subset)
                    )
                )
                priority_estimates[index].append(
                    float(
                        sum(v for item, v in sample_estimates.items() if item in subset)
                    )
                )
        per_subset = []
        efficiencies = []
        for index, truth in enumerate(truths):
            if truth <= 0:
                continue
            unbiased_mse = mean_squared_error(
                unbiased_estimates[index], [truth] * self.num_trials
            )
            priority_mse = mean_squared_error(
                priority_estimates[index], [truth] * self.num_trials
            )
            per_subset.append(
                {
                    "true_count": truth,
                    "unbiased_relative_mse": unbiased_mse / truth**2,
                    "priority_relative_mse": priority_mse / truth**2,
                }
            )
            if unbiased_mse > 0:
                efficiencies.append(priority_mse / unbiased_mse)
        efficiency_quantiles = (
            quantiles(efficiencies) if efficiencies else {0.5: 1.0}
        )
        return PriorityComparisonResult(
            per_subset=per_subset, efficiency_quantiles=efficiency_quantiles
        )
