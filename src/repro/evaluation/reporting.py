"""Plain-text rendering of experiment results.

The benchmarks print the rows/series each paper figure reports; this module
turns the row dictionaries the experiment classes emit into aligned text
tables so the output of ``pytest benchmarks/ --benchmark-only`` is readable
on its own and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_summary", "format_series"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-4):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    max_rows: Optional[int] = None,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    shown = list(rows[:max_rows]) if max_rows is not None else list(rows)
    rendered = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in shown
    ]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    footer = []
    if max_rows is not None and len(rows) > max_rows:
        footer.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join([header, separator, *body, *footer])


def format_summary(summary: Mapping[str, float], *, precision: int = 4) -> str:
    """Render a summary dictionary as ``key: value`` lines."""
    if not summary:
        return "(empty summary)"
    width = max(len(str(key)) for key in summary)
    return "\n".join(
        f"{str(key).ljust(width)} : {_format_value(value, precision)}"
        for key, value in summary.items()
    )


def format_series(
    name: str, values: Iterable[float], *, precision: int = 4
) -> str:
    """Render one named numeric series on a single line."""
    rendered = ", ".join(_format_value(float(value), precision) for value in values)
    return f"{name}: [{rendered}]"


def print_experiment(
    title: str,
    *,
    summary: Optional[Mapping[str, float]] = None,
    rows: Optional[Sequence[Mapping[str, object]]] = None,
    series: Optional[Dict[str, List[float]]] = None,
    max_rows: Optional[int] = 40,
) -> None:
    """Print one experiment's outputs with a title banner (used by benchmarks)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}")
    if summary:
        print(format_summary(summary))
    if series:
        for name, values in series.items():
            print(format_series(name, values))
    if rows:
        print(format_table(rows, max_rows=max_rows))
