"""Registry mapping paper figures to their experiment classes.

Every table/figure of the paper's evaluation section has an experiment id
(``fig2_inclusion_probabilities``, ``fig7_pathological_two_half``, ...) that
DESIGN.md's per-experiment index references and the benchmark files invoke.
:func:`get_experiment` builds an experiment with optional parameter
overrides so the same registry serves quick smoke tests and full benchmark
runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import InvalidParameterError
from repro.evaluation.figures_adclick import MarginalEstimationExperiment
from repro.evaluation.figures_iid import (
    InclusionProbabilityExperiment,
    PriorityComparisonExperiment,
    SubsetSumErrorExperiment,
)
from repro.evaluation.figures_pathological import (
    CoverageExperiment,
    EpochErrorExperiment,
    MergeProfileExperiment,
    SortedStreamStudy,
    TwoHalfStreamExperiment,
    VarianceAccuracyExperiment,
)
from repro.evaluation.figures_windows import WindowedTrendingExperiment

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]


def _fig8(**overrides):
    return CoverageExperiment(study=SortedStreamStudy(**overrides))


def _fig9(**overrides):
    return VarianceAccuracyExperiment(study=SortedStreamStudy(**overrides))


def _fig10(**overrides):
    return EpochErrorExperiment(study=SortedStreamStudy(**overrides))


def _fig3(**overrides):
    overrides.setdefault("capacity", 200)
    overrides.setdefault("include_bottom_k", False)
    return SubsetSumErrorExperiment(**overrides)


def _fig4(**overrides):
    overrides.setdefault("capacity", 100)
    overrides.setdefault("include_bottom_k", True)
    return SubsetSumErrorExperiment(**overrides)


#: Experiment id -> factory accepting keyword overrides.
EXPERIMENTS: Dict[str, Callable[..., object]] = {
    "fig1_merge_profile": MergeProfileExperiment,
    "fig2_inclusion_probabilities": InclusionProbabilityExperiment,
    "fig3_relative_error_200": _fig3,
    "fig4_relative_error_100": _fig4,
    "fig5_vs_priority": PriorityComparisonExperiment,
    "fig6_marginals": MarginalEstimationExperiment,
    "fig7_pathological_two_half": TwoHalfStreamExperiment,
    "fig8_ci_coverage": _fig8,
    "fig9_stddev_accuracy": _fig9,
    "fig10_deterministic_vs_unbiased": _fig10,
    # Beyond the paper: the windows subsystem's trending workload.
    "windowed_trending": WindowedTrendingExperiment,
}


def list_experiments() -> List[str]:
    """All registered experiment ids, in figure order."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str, **overrides):
    """Build the experiment for one figure with optional parameter overrides.

    Raises
    ------
    InvalidParameterError
        If the experiment id is unknown.
    """
    factory = EXPERIMENTS.get(experiment_id)
    if factory is None:
        known = ", ".join(EXPERIMENTS)
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; known ids: {known}"
        )
    return factory(**overrides)
