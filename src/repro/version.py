"""Package version, kept in one place so docs and pyproject stay in sync."""

__version__ = "1.0.0"
