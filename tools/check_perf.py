#!/usr/bin/env python
"""Perf-regression gate: compare a fresh benchmark record to the baseline.

The CI ``perf-regression`` job runs the throughput benchmark at a fixed
smoke scale, then runs::

    python tools/check_perf.py \\
        --record benchmarks/results/update_throughput.json \\
        --baseline benchmarks/baselines/update_throughput.json

Per mode present in *both* files, the gate compares ``rows_per_sec`` and
**fails (exit 1) on a drop larger than the threshold** (default 25%).
Improvements and modes missing from the baseline are reported but never
fail; a mode present in the baseline but missing from the record fails —
silently dropping a mode is how regressions hide.

Before any comparison, the gate verifies the two records describe the
*same measurement*: their ``workload`` and ``config`` sections must be
equal, or the gate refuses outright (exit 2) — a baseline recorded under
a different batch size, shard count or worker-pool size is not a valid
comparison target, and silently comparing against one is how a stale
``num_workers: 1`` baseline once let the parallel mode dodge the pool
entirely.  Refresh a legitimately-changed baseline with
``--update-baseline``.

Runner-to-runner noise is real: the threshold is deliberately loose, and
``--normalize scalar`` makes the comparison machine-relative (each
mode's throughput divided by the same record's scalar throughput) for
fleets with heterogeneous runners.  When a hardware change legitimately
moves the floor, refresh the committed baseline with ``--update-baseline``
and commit the diff.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RECORD = REPO_ROOT / "benchmarks" / "results" / "update_throughput.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "update_throughput.json"


def load_record(path: Path) -> Dict[str, object]:
    """One benchmark record, validated to have a modes section."""
    record = json.loads(path.read_text())
    modes = record.get("modes")
    if not isinstance(modes, dict) or not modes:
        raise SystemExit(f"{path}: not a throughput record (no 'modes' section)")
    return record


def load_throughputs(path: Path) -> Dict[str, float]:
    """Mode -> rows_per_sec from one benchmark record."""
    record = load_record(path)
    return {
        name: float(stats["rows_per_sec"])
        for name, stats in record["modes"].items()
        if isinstance(stats, dict) and "rows_per_sec" in stats
    }


#: Sections that define *what* was measured.  A baseline recorded under a
#: different workload or configuration is not a valid comparison target:
#: e.g. a baseline whose parallel mode ran with ``num_workers: 1`` would
#: let a pool regression hide behind the inline path's numbers.
_IDENTITY_SECTIONS = ("workload", "config")


def config_mismatches(
    baseline: Dict[str, object], current: Dict[str, object]
) -> List[str]:
    """Human-readable diffs between the records' identity sections."""
    problems: List[str] = []
    for section in _IDENTITY_SECTIONS:
        base, now = baseline.get(section), current.get(section)
        if base == now:
            continue
        if not isinstance(base, dict) or not isinstance(now, dict):
            problems.append(
                f"{section}: baseline has {base!r}, record has {now!r}"
            )
            continue
        for key in sorted(set(base) | set(now)):
            if base.get(key) != now.get(key):
                problems.append(
                    f"{section}.{key}: baseline {base.get(key)!r} "
                    f"!= record {now.get(key)!r}"
                )
    return problems


def normalize(throughputs: Dict[str, float], mode: str, path: Path) -> Dict[str, float]:
    """Express every mode relative to one reference mode's throughput."""
    reference = throughputs.get(mode)
    if not reference:
        raise SystemExit(
            f"{path}: cannot normalize by {mode!r} (mode missing or zero)"
        )
    return {name: value / reference for name, value in throughputs.items()}


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    *,
    threshold: float,
) -> List[str]:
    """Return the failure messages (empty = gate passes), printing a table."""
    failures: List[str] = []
    width = max((len(name) for name in baseline | current), default=4)
    print(f"{'mode':>{width}}  {'baseline':>14}  {'current':>14}  {'change':>8}")
    for name in sorted(baseline | current):
        base, now = baseline.get(name), current.get(name)
        if base is None:
            print(f"{name:>{width}}  {'—':>14}  {now:>14,.1f}  {'new':>8}")
            continue
        if now is None:
            print(f"{name:>{width}}  {base:>14,.1f}  {'—':>14}  {'GONE':>8}")
            failures.append(
                f"mode {name!r} is in the baseline but missing from the record"
            )
            continue
        change = (now - base) / base
        flag = "" if change >= -threshold else "  << REGRESSION"
        print(f"{name:>{width}}  {base:>14,.1f}  {now:>14,.1f}  {change:>+7.1%}{flag}")
        if change < -threshold:
            failures.append(
                f"mode {name!r} regressed {-change:.1%} "
                f"({base:,.1f} -> {now:,.1f} rows/s; threshold {threshold:.0%})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", type=Path, default=DEFAULT_RECORD,
                        help="the fresh benchmark record to check")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="the committed baseline to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated per-mode throughput drop (fraction, default 0.25)",
    )
    parser.add_argument(
        "--normalize",
        metavar="MODE",
        default=None,
        help="compare mode/MODE throughput ratios instead of absolute rows/s "
        "(machine-relative; e.g. --normalize scalar)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="copy the record over the baseline instead of comparing",
    )
    args = parser.parse_args(argv)

    if not args.record.exists():
        raise SystemExit(f"no benchmark record at {args.record}; run the benchmark first")
    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.record, args.baseline)
        print(f"baseline refreshed: {args.record} -> {args.baseline}")
        return 0
    if not args.baseline.exists():
        raise SystemExit(
            f"no committed baseline at {args.baseline}; seed one with --update-baseline"
        )

    baseline_record = load_record(args.baseline)
    current_record = load_record(args.record)
    mismatches = config_mismatches(baseline_record, current_record)
    if mismatches:
        print(
            f"REFUSED: baseline {args.baseline} was recorded under a "
            "different configuration than this run:",
            file=sys.stderr,
        )
        for mismatch in mismatches:
            print(f"  - {mismatch}", file=sys.stderr)
        print(
            "  refresh it with --update-baseline (and commit the diff) if "
            "the change is intentional",
            file=sys.stderr,
        )
        return 2

    baseline = load_throughputs(args.baseline)
    current = load_throughputs(args.record)
    unit = "rows/s"
    if args.normalize:
        baseline = normalize(baseline, args.normalize, args.baseline)
        current = normalize(current, args.normalize, args.record)
        unit = f"x {args.normalize}"
    print(f"perf gate: threshold {args.threshold:.0%} per mode ({unit})")
    failures = compare(baseline, current, threshold=args.threshold)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nOK: no mode regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
