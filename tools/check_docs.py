#!/usr/bin/env python
"""Documentation checker: doctest every docs page, verify every link.

Run from the repository root (the CI ``docs`` job does)::

    PYTHONPATH=src python tools/check_docs.py

Three gates, all hard failures:

1. **Doctests** — every ``>>>`` example in ``docs/**/*.md`` is executed
   with :func:`doctest.testfile` (one shared namespace per page, ELLIPSIS
   enabled), so the documented behavior is the actual behavior.
2. **Links** — every relative markdown link in ``docs/**/*.md`` and the
   top-level ``README.md`` must resolve to an existing file, and anchor
   fragments (``page.md#section``) must match a heading in the target
   (GitHub's slug rules: lowercase, punctuation stripped, spaces to
   hyphens).
3. **Reachability** — every page under ``docs/`` must be reachable from
   ``docs/README.md`` by following relative markdown links; an orphan
   page is documentation nobody can navigate to.

The tier-1 suite runs the same checks through
``tests/unit/test_docs.py``, so broken docs fail locally before they
fail in CI.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown inline links: [text](target) — images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks are stripped before link extraction so example
#: snippets never register as links.
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_pages() -> List[Path]:
    """Every markdown page under docs/, sorted for stable output."""
    return sorted(DOCS_DIR.rglob("*.md"))


def link_pages() -> List[Path]:
    """Pages whose links are validated: the docs tree plus the README."""
    return doc_pages() + [REPO_ROOT / "README.md"]


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, strip punctuation."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s", "-", slug)


def heading_slugs(path: Path) -> Set[str]:
    """All anchor slugs a markdown file defines."""
    return {github_slug(match) for match in _HEADING_RE.findall(path.read_text())}


def run_doctests() -> List[str]:
    """Doctest every docs page; return one failure message per bad page."""
    failures = []
    for path in doc_pages():
        result = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.ELLIPSIS,
            verbose=False,
        )
        status = "ok" if result.failed == 0 else "FAILED"
        print(
            f"doctest {path.relative_to(REPO_ROOT)}: "
            f"{result.attempted} examples, {result.failed} failed [{status}]"
        )
        if result.failed:
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: {result.failed} doctest failure(s)"
            )
    return failures


def check_links() -> List[str]:
    """Validate intra-repo links and anchors; return failure messages."""
    failures = []
    slug_cache: Dict[Path, Set[str]] = {}
    for page in link_pages():
        text = _FENCE_RE.sub("", page.read_text())
        for target in _LINK_RE.findall(text):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (
                page if not path_part else (page.parent / path_part).resolve()
            )
            location = f"{page.relative_to(REPO_ROOT)} -> {target}"
            if not resolved.exists():
                failures.append(f"{location}: file does not exist")
                continue
            if anchor:
                if resolved.suffix != ".md":
                    failures.append(f"{location}: anchor on a non-markdown file")
                    continue
                if resolved not in slug_cache:
                    slug_cache[resolved] = heading_slugs(resolved)
                if anchor not in slug_cache[resolved]:
                    failures.append(
                        f"{location}: no heading with anchor #{anchor} "
                        f"(known: {sorted(slug_cache[resolved])})"
                    )
    checked = len(link_pages())
    print(f"links: {checked} pages checked, {len(failures)} broken")
    return failures


def page_links(page: Path) -> List[Path]:
    """Existing intra-repo files a page links to (fences stripped)."""
    text = _FENCE_RE.sub("", page.read_text())
    targets = []
    for target in _LINK_RE.findall(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        path_part, _, _anchor = target.partition("#")
        if not path_part:
            continue
        resolved = (page.parent / path_part).resolve()
        if resolved.exists():
            targets.append(resolved)
    return targets


def check_reachability() -> List[str]:
    """Every docs page must be reachable from docs/README.md by links.

    Breadth-first walk over the relative links starting at the docs
    index; anything under ``docs/`` the walk never visits is an orphan —
    a page that exists but that no reader can navigate to.
    """
    index = DOCS_DIR / "README.md"
    if not index.exists():
        return ["docs/README.md: the docs index itself is missing"]
    visited: Set[Path] = set()
    frontier = [index]
    while frontier:
        page = frontier.pop()
        if page in visited:
            continue
        visited.add(page)
        for target in page_links(page):
            if target.suffix == ".md" and target not in visited:
                frontier.append(target)
    orphans = [page for page in doc_pages() if page not in visited]
    print(
        f"reachability: {len(doc_pages())} pages, "
        f"{len(visited)} reachable from docs/README.md, {len(orphans)} orphaned"
    )
    return [
        f"{page.relative_to(REPO_ROOT)}: not reachable from docs/README.md "
        "(add a link from the index or a linked page)"
        for page in orphans
    ]


def main() -> int:
    failures = run_doctests() + check_links() + check_reachability()
    if failures:
        print("\ndocumentation check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("documentation check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
