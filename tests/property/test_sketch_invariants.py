"""Property-based tests (hypothesis) for sketch structural invariants."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.reduction import GeneralizedSpaceSaving, UnbiasedPairReduction
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.frequent.misra_gries import MisraGriesSketch

# Streams of small-alphabet items so collisions and evictions actually happen.
item_streams = st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=300)
capacities = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=60, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_unbiased_space_saving_total_preserved(rows, capacity, seed):
    """The sum of all retained counters always equals the number of rows."""
    sketch = UnbiasedSpaceSaving(capacity, seed=seed)
    for row in rows:
        sketch.update(row)
    assert sketch.total_estimate() == pytest.approx(float(len(rows)))
    assert len(sketch) <= capacity


@settings(max_examples=60, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_unbiased_space_saving_estimates_nonnegative_and_bounded(rows, capacity, seed):
    """No estimate is negative or larger than the whole stream."""
    sketch = UnbiasedSpaceSaving(capacity, seed=seed)
    for row in rows:
        sketch.update(row)
    for estimate in sketch.estimates().values():
        assert 0.0 <= estimate <= len(rows)


@settings(max_examples=60, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_deterministic_space_saving_overestimates_within_bound(rows, capacity, seed):
    """DSS estimates lie in [true, true + N/m] and totals are preserved."""
    sketch = DeterministicSpaceSaving(capacity, seed=seed)
    for row in rows:
        sketch.update(row)
    truth = Counter(rows)
    bound = len(rows) / capacity
    for item, estimate in sketch.estimates().items():
        assert estimate >= truth[item]
        assert estimate - truth[item] <= bound + 1e-9
    assert sum(sketch.estimates().values()) == pytest.approx(float(len(rows)))
    assert len(sketch) <= capacity


@settings(max_examples=60, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_exact_below_capacity_for_both_sketches(rows, capacity, seed):
    """While distinct items fit in the bins, both sketches are exact."""
    distinct = len(set(rows))
    if distinct > capacity:
        rows = rows[: capacity]  # keep only a prefix that must fit
    truth = Counter(rows)
    unbiased = UnbiasedSpaceSaving(max(capacity, 1), seed=seed)
    deterministic = DeterministicSpaceSaving(max(capacity, 1), seed=seed)
    for row in rows:
        unbiased.update(row)
        deterministic.update(row)
    for item, count in truth.items():
        assert unbiased.estimate(item) == count
        assert deterministic.estimate(item) == count


@settings(max_examples=60, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_misra_gries_underestimates_within_bound(rows, capacity, seed):
    """Misra-Gries never overestimates and undercounts by at most N/(m+1)."""
    sketch = MisraGriesSketch(capacity)
    for row in rows:
        sketch.update(row)
    truth = Counter(rows)
    bound = len(rows) / (capacity + 1)
    for item in truth:
        estimate = sketch.estimate(item)
        assert estimate <= truth[item]
        assert truth[item] - estimate <= bound + 1e-9
    assert len(sketch.estimates()) <= capacity


@settings(max_examples=40, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_generalized_sketch_matches_unbiased_invariants(rows, capacity, seed):
    """The Algorithm 2 reference implementation shares the key invariants."""
    sketch = GeneralizedSpaceSaving(capacity, policy=UnbiasedPairReduction(), seed=seed)
    for row in rows:
        sketch.update(row)
    assert len(sketch) <= capacity
    assert sum(sketch.estimates().values()) == pytest.approx(float(len(rows)))


@settings(max_examples=40, deadline=None)
@given(rows=item_streams, capacity=capacities, seed=seeds)
def test_heavy_hitters_are_subset_of_estimates(rows, capacity, seed):
    """heavy_hitters() returns retained items above the requested threshold."""
    sketch = UnbiasedSpaceSaving(capacity, seed=seed)
    for row in rows:
        sketch.update(row)
    if not rows:
        return
    hitters = sketch.heavy_hitters(0.2)
    estimates = sketch.estimates()
    threshold = 0.2 * len(rows)
    for item, estimate in hitters.items():
        assert item in estimates
        assert estimate >= threshold
