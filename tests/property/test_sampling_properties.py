"""Property-based tests for the PPS / priority / VarOpt sampling machinery."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.pps import (
    expected_sample_size,
    inclusion_probabilities,
    pps_threshold,
    splitting_pps_sample,
)
from repro.sampling.priority import PrioritySample
from repro.sampling.varopt import varopt_reduce

weight_maps = st.dictionaries(
    st.integers(min_value=0, max_value=200),
    st.floats(min_value=0.01, max_value=1_000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)
budgets = st.integers(min_value=1, max_value=20)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=80, deadline=None)
@given(weights=weight_maps, budget=budgets)
def test_inclusion_probabilities_are_valid_and_sum_to_budget(weights, budget):
    """π_i ∈ (0, 1] and Σπ_i equals min(budget, number of positive items)."""
    probabilities = inclusion_probabilities(weights, budget)
    positive_items = sum(1 for weight in weights.values() if weight > 0)
    for item, probability in probabilities.items():
        assert 0.0 <= probability <= 1.0
        if weights[item] > 0:
            assert probability > 0.0
    expected = min(budget, positive_items)
    assert expected_sample_size(probabilities) == pytest.approx(expected, rel=1e-6)


@settings(max_examples=80, deadline=None)
@given(weights=weight_maps, budget=budgets)
def test_threshold_monotone_in_budget(weights, budget):
    """A larger budget never increases the PPS threshold."""
    smaller = pps_threshold(weights, budget)
    larger = pps_threshold(weights, budget + 5)
    assert larger <= smaller + 1e-9


@settings(max_examples=80, deadline=None)
@given(weights=weight_maps, budget=budgets)
def test_larger_weights_have_larger_probabilities(weights, budget):
    """Inclusion probabilities are monotone in the weights."""
    probabilities = inclusion_probabilities(weights, budget)
    ordered = sorted(weights.items(), key=lambda kv: kv[1])
    for (_, small_weight), (_, large_weight) in zip(ordered, ordered[1:]):
        del small_weight, large_weight
    for first, second in zip(ordered, ordered[1:]):
        assert probabilities[first[0]] <= probabilities[second[0]] + 1e-9


@settings(max_examples=50, deadline=None)
@given(weights=weight_maps, budget=budgets, seed=seeds)
def test_splitting_sample_size_is_fixed(weights, budget, seed):
    """The splitting (pivotal) procedure returns exactly min(budget, positive items)."""
    sample = splitting_pps_sample(weights, budget, rng=random.Random(seed))
    positive_items = sum(1 for weight in weights.values() if weight > 0)
    assert len(sample) == min(budget, positive_items)


@settings(max_examples=50, deadline=None)
@given(weights=weight_maps, budget=budgets, seed=seeds)
def test_priority_sample_adjusted_values_dominate_threshold(weights, budget, seed):
    """Every sampled adjusted value is at least the threshold, and size ≤ k."""
    sample = PrioritySample(weights, budget, rng=random.Random(seed))
    assert len(sample) <= budget
    for item in sample.estimates():
        assert sample.adjusted_value(item) >= sample.threshold - 1e-9
        assert sample.pseudo_inclusion_probability(item) <= 1.0


@settings(max_examples=50, deadline=None)
@given(weights=weight_maps, budget=budgets, seed=seeds)
def test_varopt_reduce_size_and_adjusted_weights(weights, budget, seed):
    """VarOpt reduction respects the budget and never shrinks a kept certainty item."""
    reduced = varopt_reduce(weights, budget, rng=random.Random(seed))
    positive_items = sum(1 for weight in weights.values() if weight > 0)
    assert len(reduced) <= max(budget, positive_items)
    if positive_items > budget:
        assert len(reduced) <= budget + 1  # systematic rounding may keep one extra
    for item, adjusted in reduced.items():
        assert adjusted >= weights[item] - 1e-9
