"""Property tests for the windows subsystem: window merge == sketch merge.

The load-bearing identity behind :mod:`repro.windows` is that a sliding
window's query view, the explicit merge of its live panes, and a fresh
sketch fed only the in-horizon rows are *the same summary*.  With pane
capacity large enough that no pane saturates (so every pane holds exact
counts and the lossless merge adds no reduction noise) the three must be
exactly equal — for every stream hypothesis can dream up.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_many_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.windows.windowed import SlidingWindowSketch

CAPACITY = 64          # > the 8-item alphabet: panes never saturate
HORIZON = 30.0
PANE = 10.0

#: Timestamped rows over a tiny alphabet; timestamps span ~10 windows so
#: streams regularly rotate panes out of the horizon.
timestamped_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=80,
)


def _ingest(rows, seed):
    """Feed rows in timestamp order (the windows contract for replays)."""
    sketch = SlidingWindowSketch(
        CAPACITY, horizon=HORIZON, pane=PANE, seed=seed
    )
    for item, timestamp in sorted(rows, key=lambda row: row[1]):
        sketch.update(item, timestamp=timestamp)
    return sketch


def _in_horizon(rows, sketch):
    if sketch.active_window_index is None:
        return []
    horizon_start = sketch.origin + (
        sketch.active_window_index - sketch.num_panes + 1
    ) * sketch.pane_seconds
    return [row for row in sorted(rows, key=lambda r: r[1]) if row[1] >= horizon_start]


@settings(max_examples=200, deadline=None)
@given(rows=timestamped_streams, seed=st.integers(min_value=0, max_value=2**20))
def test_window_query_equals_pane_merge_equals_fresh_sketch(rows, seed):
    windowed = _ingest(rows, seed)

    # (a) the windowed query view
    view = windowed.estimates()

    # (b) the explicit merge of the live panes (lossless capacity)
    panes = [pane for _, pane in windowed.window_panes()]
    if panes:
        union = max(1, sum(len(pane.estimates()) for pane in panes))
        merged = merge_many_unbiased(panes, capacity=union, seed=seed).estimates()
    else:
        merged = {}

    # (c) a fresh sketch fed only the in-horizon rows, same seed
    fresh = UnbiasedSpaceSaving(CAPACITY, seed=seed)
    survivors = _in_horizon(rows, windowed)
    for item, _ in survivors:
        fresh.update(item)

    assert view == merged
    assert view == fresh.estimates()
    assert windowed.total_estimate() == float(len(survivors))


@settings(max_examples=200, deadline=None)
@given(rows=timestamped_streams, seed=st.integers(min_value=0, max_value=2**20))
def test_window_heavy_hitters_and_subset_sums_match_fresh_sketch(rows, seed):
    windowed = _ingest(rows, seed)
    fresh = UnbiasedSpaceSaving(CAPACITY, seed=seed)
    for item, _ in _in_horizon(rows, windowed):
        fresh.update(item)
    if fresh.total_weight > 0:
        assert windowed.heavy_hitters(0.25) == fresh.heavy_hitters(0.25)
    even = lambda item: item % 2 == 0  # noqa: E731
    assert windowed.subset_sum(even) == fresh.subset_sum(even)
