"""Differential-equivalence suite: columnar kernel vs the reference scalar spec.

The columnar store (:mod:`repro.core.columnar`) ships three kernels that must
be *bit-identical*, not merely distributionally equal: the vectorized numpy
level sweep, the optional numba per-contest loop, and ``reference`` — a naive
scalar linear-scan implementation of the per-contest replacement rule that
serves as the executable specification.  All kernels consume the same
pre-drawn randomness block, so under one seed every count, priority, label
and query answer must match exactly.

Every property here drives a full sketch (not the bare store) through
hypothesis-generated streams — unit and weighted rows, heavy duplication,
adversarial min-ties, capacity churn — once per kernel, then asserts
query-level identity: point estimates, subset sums with variances, heavy
hitters, top-k, merges, and serialize → restore → continue continuations.

The ``REPRO_KERNEL`` feature flag is exercised on both documented settings:
unset (pure-numpy fallback) and ``numba`` (which silently falls back to
numpy when numba is not importable — the CI kernel-matrix job runs this
suite under both values, so on a numba-equipped runner the jitted kernel is
what gets differentially tested here).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeterministicSpaceSaving,
    UnbiasedSpaceSaving,
    merge_unbiased,
    resolve_kernel_name,
)

# The two documented settings of the feature flag.  ``None`` means unset
# (pure-numpy fallback); "numba" selects the jitted kernel where available
# and must fall back to numpy identically where not.
KERNEL_FLAGS = [None, "numba"]


def _flag_id(flag):
    return "flag-unset" if flag is None else f"flag-{flag}"


def make_sketch(kernel, cls=UnbiasedSpaceSaving, *, capacity, seed, **kwargs):
    """Build a sketch whose columnar store uses ``kernel``.

    ``kernel`` is either an explicit kernel name ("reference") or a feature
    flag value (None / "numba") applied through the environment, exactly as
    a deployment would set it.
    """
    previous = os.environ.pop("REPRO_KERNEL", None)
    try:
        if kernel in ("reference",):
            os.environ["REPRO_KERNEL"] = kernel
        elif kernel is not None:
            os.environ["REPRO_KERNEL"] = kernel
        return cls(capacity, seed=seed, **kwargs)
    finally:
        os.environ.pop("REPRO_KERNEL", None)
        if previous is not None:
            os.environ["REPRO_KERNEL"] = previous


def drive(sketch, chunks, weights_chunks=None):
    """Replay a stream as a mix of scalar updates and array batches."""
    for position, chunk in enumerate(chunks):
        weights = None if weights_chunks is None else weights_chunks[position]
        if position % 2 == 0:
            sketch.update_batch(np.asarray(chunk, dtype=np.int64), weights)
        else:
            for row_index, item in enumerate(chunk):
                weight = 1.0 if weights is None else weights[row_index]
                sketch.update(int(item), weight)
    return sketch


def assert_query_identical(left, right):
    """Full query-surface identity between two sketches."""
    assert left.estimates() == right.estimates()
    assert left.total_weight == right.total_weight
    assert left.rows_processed == right.rows_processed
    assert left.total_estimate() == right.total_estimate()
    if left.estimates():
        labels = sorted(left.estimates())
        half = set(labels[: len(labels) // 2 + 1])
        lhs = left.subset_sum_with_error(lambda item: item in half)
        rhs = right.subset_sum_with_error(lambda item: item in half)
        assert lhs.estimate == rhs.estimate
        assert lhs.variance == rhs.variance
        assert left.heavy_hitters(0.05) == right.heavy_hitters(0.05)
        assert left.top_k(5) == right.top_k(5)


# ---------------------------------------------------------------------------
# Stream strategies
# ---------------------------------------------------------------------------

# Small label universes against small capacities force constant min-bin
# contests; the duplicated blocks create adversarial min-ties (many bins
# sitting at the same level simultaneously).
unit_streams = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=60),
    min_size=1,
    max_size=5,
)

weighted_chunks = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=25),
            st.floats(min_value=0.0078125, max_value=8.0, allow_nan=False, width=32),
        ),
        min_size=0,
        max_size=50,
    ),
    min_size=1,
    max_size=4,
)


@pytest.mark.parametrize("flag", KERNEL_FLAGS, ids=_flag_id)
class TestColumnarEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(chunks=unit_streams, capacity=st.integers(min_value=2, max_value=16), seed=st.integers(0, 2**20))
    def test_unit_streams_match_reference(self, flag, chunks, capacity, seed):
        fast = drive(make_sketch(flag, capacity=capacity, seed=seed), chunks)
        spec = drive(make_sketch("reference", capacity=capacity, seed=seed), chunks)
        assert_query_identical(fast, spec)

    @settings(max_examples=200, deadline=None)
    @given(chunks=weighted_chunks, capacity=st.integers(min_value=2, max_value=12), seed=st.integers(0, 2**20))
    def test_weighted_streams_match_reference(self, flag, chunks, capacity, seed):
        items = [[item for item, _ in chunk] for chunk in chunks]
        weights = [[weight for _, weight in chunk] for chunk in chunks]
        fast = drive(make_sketch(flag, capacity=capacity, seed=seed), items, weights)
        spec = drive(make_sketch("reference", capacity=capacity, seed=seed), items, weights)
        assert_query_identical(fast, spec)

    @settings(max_examples=200, deadline=None)
    @given(
        distinct=st.integers(min_value=4, max_value=40),
        repeats=st.integers(min_value=1, max_value=4),
        capacity=st.integers(min_value=2, max_value=6),
        seed=st.integers(0, 2**20),
    )
    def test_adversarial_min_ties_and_churn(self, flag, distinct, repeats, capacity, seed):
        # Every label appears with the same weight, so after warm-up *all*
        # bins tie at the minimum and every arrival is a contest decided
        # purely by tie-breaking; distinct >> capacity adds label churn.
        stream = list(range(distinct)) * repeats
        chunks = [stream, list(reversed(stream))]
        fast = drive(make_sketch(flag, capacity=capacity, seed=seed), chunks)
        spec = drive(make_sketch("reference", capacity=capacity, seed=seed), chunks)
        assert_query_identical(fast, spec)
        assert fast._label_replacements == spec._label_replacements

    @settings(max_examples=200, deadline=None)
    @given(chunks=unit_streams, capacity=st.integers(min_value=2, max_value=12), seed=st.integers(0, 2**20))
    def test_deterministic_space_saving_matches_reference(self, flag, chunks, capacity, seed):
        fast = drive(make_sketch(flag, cls=DeterministicSpaceSaving, capacity=capacity, seed=seed), chunks)
        spec = drive(
            make_sketch("reference", cls=DeterministicSpaceSaving, capacity=capacity, seed=seed),
            chunks,
        )
        assert fast.estimates() == spec.estimates()
        assert fast.bins() == spec.bins()
        assert fast.guaranteed_heavy_hitters(0.1) == spec.guaranteed_heavy_hitters(0.1)
        assert fast.to_misra_gries_estimates() == spec.to_misra_gries_estimates()

    @settings(max_examples=200, deadline=None)
    @given(
        head=st.lists(st.integers(min_value=0, max_value=30), max_size=80),
        tail=st.lists(st.integers(min_value=0, max_value=30), max_size=80),
        capacity=st.integers(min_value=2, max_value=12),
        seed=st.integers(0, 2**20),
    )
    def test_checkpoint_restore_continue(self, flag, head, tail, capacity, seed):
        # A restored sketch must continue the stream bit-identically to the
        # original — counts, priorities and the kernel's RNG stream all
        # survive the round trip.
        original = drive(make_sketch(flag, capacity=capacity, seed=seed), [head])
        restored = UnbiasedSpaceSaving.from_bytes(original.to_bytes())
        drive(original, [tail])
        drive(restored, [tail])
        assert_query_identical(original, restored)

    @settings(max_examples=200, deadline=None)
    @given(
        left=st.lists(st.integers(min_value=0, max_value=25), max_size=60),
        right=st.lists(st.integers(min_value=25, max_value=50), max_size=60),
        capacity=st.integers(min_value=3, max_value=10),
        seed=st.integers(0, 2**20),
    )
    def test_merge_unbiased_matches_reference(self, flag, left, right, capacity, seed):
        fast_pair = [
            drive(make_sketch(flag, capacity=capacity, seed=seed), [left]),
            drive(make_sketch(flag, capacity=capacity, seed=seed + 1), [right]),
        ]
        spec_pair = [
            drive(make_sketch("reference", capacity=capacity, seed=seed), [left]),
            drive(make_sketch("reference", capacity=capacity, seed=seed + 1), [right]),
        ]
        merged_fast = merge_unbiased(*fast_pair, seed=seed)
        merged_spec = merge_unbiased(*spec_pair, seed=seed)
        assert merged_fast.estimates() == merged_spec.estimates()
        assert merged_fast.total_weight == merged_spec.total_weight


@settings(max_examples=200, deadline=None)
@given(
    stream=st.lists(st.integers(min_value=0, max_value=20), max_size=60),
    capacity=st.integers(min_value=2, max_value=8),
    seed=st.integers(0, 2**20),
)
def test_scalar_update_equals_batch_of_one(stream, capacity, seed):
    """update(item) and update_batch([item]) draw identically (k = 1 kernel)."""
    scalar = make_sketch(None, capacity=capacity, seed=seed)
    batched = make_sketch(None, capacity=capacity, seed=seed)
    for item in stream:
        scalar.update(item)
        batched.update_batch(np.asarray([item], dtype=np.int64))
    assert_query_identical(scalar, batched)


def test_kernel_flag_resolution():
    """The flag resolves exactly as documented, including the numba fallback."""
    previous = os.environ.pop("REPRO_KERNEL", None)
    try:
        assert resolve_kernel_name(None) == "numpy"
        os.environ["REPRO_KERNEL"] = "reference"
        assert resolve_kernel_name(None) == "reference"
        os.environ["REPRO_KERNEL"] = "numba"
        # On a runner without numba this falls back to numpy; with numba it
        # stays numba.  Either way it must resolve without raising.
        assert resolve_kernel_name(None) in ("numba", "numpy")
    finally:
        os.environ.pop("REPRO_KERNEL", None)
        if previous is not None:
            os.environ["REPRO_KERNEL"] = previous


@settings(max_examples=200, deadline=None)
@given(
    head=st.lists(st.integers(min_value=0, max_value=10), max_size=20),
    tail=st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=10),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=16),
        ),
        max_size=20,
    ),
    seed=st.integers(0, 2**20),
)
def test_mixed_numeric_labels_never_alias(head, tail, seed):
    """Batches mixing int and float labels must not truncate floats to ints.

    Regression: the int membership fast path once cast whole Python-list
    batches to int64 when the *first* element was an int, silently
    crediting 2.5's weight to bin 2.  With capacity ≥ the number of
    distinct labels no replacement contest ever fires, so the sketch must
    hold the exact multiset counts of the stream — aliasing breaks that.
    The int-only head batch arms the store's int-labels fast path before
    the mixed batch arrives.
    """
    from collections import Counter

    expected = Counter(head + tail)
    capacity = max(2, len(expected))
    sketch = make_sketch(None, capacity=capacity, seed=seed)
    if head:
        sketch.update_batch(list(head))
    if tail:
        sketch.update_batch(list(tail))
    assert sketch.estimates() == {k: float(v) for k, v in expected.items()}


def test_mixed_batch_keeps_float_label_distinct():
    """The reviewer's exact case: [2, 2.5] into a store already holding 2."""
    sketch = make_sketch(None, capacity=4, seed=3)
    sketch.update(2)
    sketch.update_batch([2, 2.5])
    estimates = sketch.estimates()
    assert estimates[2] == 2.0
    assert estimates[2.5] == 1.0


@settings(max_examples=200, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=6),
    kr=st.integers(min_value=1, max_value=12),
    seed=st.integers(0, 2**20),
)
def test_sweep_matches_reference_under_float_absorption(m, kr, seed):
    """Kernels stay bit-identical when ``level + weight == level`` (float64).

    Regression: the numpy level sweep once retired an entire tied level in
    one pass, assuming every winner's count moves strictly upward.  With
    counts near 2**53 × weight the addition is absorbed, the winner stays
    at the level, and the reference kernel re-selects it under its fresh
    priority — the sweep must truncate the retirement and re-derive the
    tied set at that point.
    """
    from repro.core.columnar import _sweep_numpy, _sweep_reference

    rng = np.random.default_rng(seed)
    counts = np.full(m, 1e16)  # 1e16 + 2.0 == 1e16 in float64
    prio = rng.random(m)
    weights = rng.choice([0.5, 1.0, 2.0], kr)
    r_draws = rng.random(kr)
    u_draws = rng.random(kr)
    for always_replace in (False, True):
        fast = _sweep_numpy(
            counts.copy(), prio.copy(), weights, r_draws, u_draws, always_replace
        )
        spec = _sweep_reference(
            counts.copy(), prio.copy(), weights, r_draws, u_draws, always_replace
        )
        for got, expected in zip(fast, spec):
            assert np.array_equal(got, expected)
