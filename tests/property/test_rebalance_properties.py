"""Property-based tests (hypothesis) for live rebalance invariants.

The elasticity machinery rests on three ring/partition facts, stated
here over arbitrary memberships, join/decommission sequences and keys:

* **Bounded movement** — a single join moves only the keys the newcomer
  claims (expected ``K/(N+1)`` of ``K``), all of them *to* it; a
  decommission moves only the leaver's keys, all of them *away*.
  :func:`repro.cluster.membership.ring_delta` must report exactly that
  set, and its size must respect the consistent-hashing bound (with
  statistical slack — vnode placement is hash-random).
* **One owner per epoch** — at every epoch of a random membership-change
  sequence, ownership is a total function onto the current member set,
  and rebuilding the ring from the same ``(members, replicas, seed)``
  reproduces it exactly.
* **Exact totals across a move** — ownership partitions the key space,
  so summing per-owner masses gives the exact stream total under the
  old placement, the new placement, and *any* mid-migration mixture of
  the two (each key counted at exactly one of its two homes) — the
  reason scatter-gather reads stay exact while shards are in flight.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterMembership, HashRing, ring_delta, scatter_batch

member_sets = st.sets(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)
keys = st.lists(
    st.tuples(st.sampled_from(["default", "ads", "t1"]), st.integers(0, 10_000)),
    min_size=1,
    max_size=60,
    unique=True,
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
#: A join/decommission script: True adds the next fresh member, False
#: removes the oldest remaining one (skipped when it would empty the ring).
change_scripts = st.lists(st.booleans(), min_size=1, max_size=6)


@settings(max_examples=50, deadline=None)
@given(members=member_sets, sample=keys, seed=seeds)
def test_join_moves_only_to_the_newcomer_within_the_bound(members, sample, seed):
    """All join movement targets the new member, and the moved-key count
    stays within ceil(K/(N+1)) plus statistical slack."""
    newcomer = "zz-new"
    assert newcomer not in members
    before = HashRing(members, seed=seed)
    after = HashRing({*members, newcomer}, seed=seed)
    delta = ring_delta(before, after, sample)
    for key, (old_owner, new_owner) in delta.items():
        assert old_owner in members
        assert new_owner == newcomer  # movement only ever targets the joiner
        assert before.owner(key) == old_owner
        assert after.owner(key) == new_owner
    # Statistical bound: expectation is K/(N+1); 64 vnodes keep member
    # load within a small constant factor, and the slack term absorbs
    # small-sample noise without ever tolerating wholesale reshuffling.
    population = len(sample)
    expected = math.ceil(population / (len(members) + 1))
    assert len(delta) <= 3 * expected + 8
    # Unmoved keys kept their owner (ring_delta reported the full set).
    for key in sample:
        if key not in delta:
            assert after.owner(key) == before.owner(key)


@settings(max_examples=50, deadline=None)
@given(members=member_sets, sample=keys, seed=seeds)
def test_decommission_moves_only_the_leavers_keys(members, sample, seed):
    """ring_delta on a shrink is exactly the leaver's key set."""
    if len(members) < 2:
        return
    leaver = sorted(members)[-1]
    before = HashRing(members, seed=seed)
    after = HashRing(members - {leaver}, seed=seed)
    delta = ring_delta(before, after, sample)
    for key, (old_owner, new_owner) in delta.items():
        assert old_owner == leaver  # only the leaver's keys move
        assert new_owner != leaver
    assert set(delta) == {key for key in sample if before.owner(key) == leaver}


@settings(max_examples=50, deadline=None)
@given(script=change_scripts, sample=keys, seed=seeds)
def test_every_key_has_exactly_one_owner_per_epoch(script, sample, seed):
    """Across a random join/decommission sequence: epochs increase by one
    per change, ownership is total onto the live member set, and a ring
    rebuilt from the same parameters reproduces it key for key."""
    membership = ClusterMembership([("m0", "h", 1)], seed=seed)
    assert membership.epoch == 0
    counter = 0
    for grow in script:
        if grow:
            counter += 1
            previous = membership.epoch
            membership.add_member((f"n{counter}", "h", 1))
            assert membership.epoch == previous + 1
        else:
            current = [m.member_id for m in membership.members()]
            if len(current) < 2:
                continue
            previous = membership.epoch
            membership.remove_member(current[0])
            assert membership.epoch == previous + 1
        ring = membership.ring
        ids = {m.member_id for m in membership.members()}
        rebuilt = HashRing(ids, replicas=ring.replicas, seed=ring.seed)
        for key in sample:
            owner = ring.owner(key)
            assert owner in ids  # a total function onto the live set
            assert rebuilt.owner(key) == owner  # pure in (members, replicas, seed)
            assert membership.route(key).member_id == owner  # all healthy


@settings(max_examples=50, deadline=None)
@given(sample=keys, seed=seeds, shards=st.integers(2, 6))
def test_totals_exact_before_during_and_after_a_move(sample, seed, shards):
    """Partition ⇒ exactness: per-owner mass sums to the stream total
    under the old placement, the new one, and any mid-move mixture."""
    items = [key for key in sample]
    weights = [float(1 + (index % 7)) for index in range(len(items))]
    total = sum(weights)
    slices = scatter_batch(items, weights, None, shards, seed=seed)
    shard_mass = [sum(shard_weights or []) for _, shard_weights, _ in slices]
    assert sum(shard_mass) == total  # scatter loses nothing

    before = HashRing(["m0", "m1", "m2"], seed=seed)
    after = HashRing(["m0", "m1", "m2", "m3"], seed=seed)
    shard_keys = [("default", f"s@shard{index}") for index in range(shards)]

    def gathered(owner_of) -> float:
        by_member: dict = {}
        for index, key in enumerate(shard_keys):
            by_member.setdefault(owner_of(index, key), 0.0)
            by_member[owner_of(index, key)] += shard_mass[index]
        return sum(by_member.values())

    assert gathered(lambda i, k: before.owner(k)) == total
    assert gathered(lambda i, k: after.owner(k)) == total
    # Mid-migration: any subset of shards already flipped to the new
    # ring, the rest still on the old one — each shard has exactly one
    # home either way, so the gather stays exact at every intermediate
    # step of the move.
    for moved_prefix in range(shards + 1):
        owner_of = lambda i, k: (  # noqa: E731
            after.owner(k) if i < moved_prefix else before.owner(k)
        )
        assert gathered(owner_of) == total
