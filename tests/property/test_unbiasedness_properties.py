"""Property-based tests of the martingale/unbiasedness mechanics.

Rather than Monte-Carlo averaging (covered by the unit and integration
tests), these properties verify the *exact* expectation identities the
proofs rely on, by enumerating the randomness of a single update or
reduction step.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import UnbiasedPairReduction
from repro.core.merge import reduce_bins_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.sampling.pps import inclusion_probabilities


@settings(max_examples=100, deadline=None)
@given(
    min_count=st.integers(min_value=1, max_value=50),
    weight=st.integers(min_value=1, max_value=10),
)
def test_pairwise_reduction_expectation_identity(min_count, weight):
    """E[post-reduction counts] equals pre-reduction counts, exactly.

    The pairwise reduction keeps the combined count ``c = min_count + weight``
    and assigns it to the newcomer with probability ``weight / c``.  The
    expectation identity of Theorem 1 is then
    ``E[newcomer] = c · weight/c = weight`` and
    ``E[incumbent] = c · min_count/c = min_count``.
    """
    combined = min_count + weight
    probability_newcomer = weight / combined
    expected_newcomer = combined * probability_newcomer
    expected_incumbent = combined * (1.0 - probability_newcomer)
    assert expected_newcomer == pytest.approx(weight)
    assert expected_incumbent == pytest.approx(min_count)


@settings(max_examples=60, deadline=None)
@given(
    incumbent=st.integers(min_value=1, max_value=30),
    newcomer_weight=st.integers(min_value=1, max_value=10),
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=300, max_size=300, unique=True),
)
def test_pairwise_reduction_empirical_expectation(incumbent, newcomer_weight, seeds):
    """Averaging the realized reduction over many seeds recovers both counts."""
    policy = UnbiasedPairReduction()
    bins = {"old": float(incumbent), "new": float(newcomer_weight)}
    total_new = 0.0
    total_old = 0.0
    for seed in seeds:
        reduced = policy.reduce(dict(bins), 1, random.Random(seed), "new")
        total_new += reduced.get("new", 0.0)
        total_old += reduced.get("old", 0.0)
    n = len(seeds)
    combined = incumbent + newcomer_weight
    tolerance = 4 * combined / (n**0.5) + 0.5
    assert total_new / n == pytest.approx(newcomer_weight, abs=tolerance)
    assert total_old / n == pytest.approx(incumbent, abs=tolerance)


@settings(max_examples=40, deadline=None)
@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=30),
        min_size=3,
        max_size=25,
    ),
    capacity=st.integers(min_value=1, max_value=8),
    seeds=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=200, max_size=200, unique=True
    ),
)
def test_unbiased_bin_reduction_preserves_item_expectations(counts, capacity, seeds):
    """reduce_bins_unbiased keeps E[count] for every item (Theorem 2's condition)."""
    bins = {item: float(count) for item, count in counts.items()}
    total = sum(bins.values())
    sums = {item: 0.0 for item in bins}
    for seed in seeds:
        reduced = reduce_bins_unbiased(bins, capacity, method="pps", rng=random.Random(seed))
        for item in sums:
            sums[item] += reduced.get(item, 0.0)
    n = len(seeds)
    for item, count in bins.items():
        # The Horvitz-Thompson estimate of one item has standard deviation at
        # most sqrt(c_i * total) (adjusted values are bounded by the larger of
        # c_i and the PPS threshold, which never exceeds the total).
        standard_error = (count * total) ** 0.5 / (n**0.5)
        assert sums[item] / n == pytest.approx(count, abs=6 * standard_error + 1.0)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_total_count_martingale_invariant(rows, capacity, seed):
    """The total is preserved exactly after every single update (not just at the end)."""
    sketch = UnbiasedSpaceSaving(capacity, seed=seed)
    for index, row in enumerate(rows, start=1):
        sketch.update(row)
        assert sketch.total_estimate() == pytest.approx(float(index))


@settings(max_examples=60, deadline=None)
@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=100),
        min_size=2,
        max_size=30,
    ),
    budget=st.integers(min_value=1, max_value=10),
)
def test_horvitz_thompson_adjustment_is_exactly_unbiased(counts, budget):
    """Σ_i π_i · (x_i / π_i) equals the true total for thresholded PPS probabilities."""
    weights = {item: float(count) for item, count in counts.items()}
    probabilities = inclusion_probabilities(weights, budget)
    reconstructed = sum(
        probabilities[item] * (weights[item] / probabilities[item])
        for item in weights
        if probabilities[item] > 0
    )
    assert reconstructed == pytest.approx(sum(weights.values()))
