"""Property-based tests for the Stream-Summary structure against a dict model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.stream_summary import StreamSummary


@settings(max_examples=60, deadline=None)
@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=50),
        min_size=1,
        max_size=40,
    )
)
def test_bulk_insert_matches_dict_model(counts):
    """Inserting arbitrary (label, count) pairs reproduces the dict exactly."""
    summary = StreamSummary()
    for label, count in counts.items():
        summary.insert(label, count)
    assert summary.counts() == counts
    assert summary.min_count() == min(counts.values())
    assert summary.max_count() == max(counts.values())
    summary.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=20),
        min_size=1,
        max_size=25,
    ),
    increments=st.lists(
        st.tuples(st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=10)),
        max_size=60,
    ),
)
def test_increments_match_dict_model(counts, increments):
    """A sequence of increments keeps the structure consistent with a dict."""
    summary = StreamSummary()
    model = dict(counts)
    for label, count in counts.items():
        summary.insert(label, count)
    for label, step in increments:
        if label in model:
            summary.increment(label, step)
            model[label] += step
    assert summary.counts() == model
    summary.check_invariants()


class StreamSummaryMachine(RuleBasedStateMachine):
    """Stateful test: random interleavings of insert/increment/remove/relabel."""

    def __init__(self):
        super().__init__()
        self.summary = StreamSummary()
        self.model = {}
        self.next_label = 0

    @rule(count=st.integers(min_value=0, max_value=30))
    def insert(self, count):
        label = self.next_label
        self.next_label += 1
        self.summary.insert(label, count)
        self.model[label] = count

    @precondition(lambda self: self.model)
    @rule(data=st.data(), step=st.integers(min_value=1, max_value=7))
    def increment(self, data, step):
        label = data.draw(st.sampled_from(sorted(self.model)))
        self.summary.increment(label, step)
        self.model[label] += step

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        label = data.draw(st.sampled_from(sorted(self.model)))
        removed = self.summary.remove(label)
        assert removed == self.model.pop(label)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def relabel(self, data):
        label = data.draw(st.sampled_from(sorted(self.model)))
        new_label = self.next_label
        self.next_label += 1
        self.summary.relabel(label, new_label)
        self.model[new_label] = self.model.pop(label)

    @invariant()
    def matches_model(self):
        assert self.summary.counts() == self.model
        if self.model:
            assert self.summary.min_count() == min(self.model.values())
        self.summary.check_invariants()


TestStreamSummaryStateful = StreamSummaryMachine.TestCase
TestStreamSummaryStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
