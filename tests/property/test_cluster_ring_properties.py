"""Property-based tests (hypothesis) for the consistent-hash ring.

The ring is a pure function of ``(member set, replicas, seed)``, so its
contracts can be stated over arbitrary memberships and keys: ownership is
order- and construction-independent, removal re-homes exactly the removed
member's keys, and the preference walk is a permutation starting at the
owner.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing

member_sets = st.sets(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)
keys = st.lists(
    st.tuples(st.sampled_from(["default", "ads", "t1"]), st.integers(0, 10_000)),
    min_size=1,
    max_size=50,
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
replica_counts = st.integers(min_value=1, max_value=64)


@settings(max_examples=50, deadline=None)
@given(members=member_sets, sample=keys, seed=seeds, replicas=replica_counts)
def test_owner_is_a_member_and_rebuild_invariant(members, sample, seed, replicas):
    """Ownership never leaves the member set and ignores insertion order."""
    ring = HashRing(members, replicas=replicas, seed=seed)
    rebuilt = HashRing(sorted(members, reverse=True), replicas=replicas, seed=seed)
    for key in sample:
        owner = ring.owner(key)
        assert owner in members
        assert rebuilt.owner(key) == owner


@settings(max_examples=50, deadline=None)
@given(members=member_sets, sample=keys, seed=seeds)
def test_removal_moves_only_the_removed_members_keys(members, sample, seed):
    """Keys owned by surviving members never change hands on shrink."""
    if len(members) < 2:
        return
    victim = sorted(members)[0]
    before = HashRing(members, seed=seed)
    after = HashRing(members - {victim}, seed=seed)
    for key in sample:
        owner = before.owner(key)
        if owner == victim:
            assert after.owner(key) != victim
        else:
            assert after.owner(key) == owner


@settings(max_examples=50, deadline=None)
@given(members=member_sets, seed=seeds)
def test_preference_is_a_permutation_starting_at_the_owner(members, seed):
    ring = HashRing(members, seed=seed)
    key = ("default", "probe")
    order = ring.preference(key)
    assert order[0] == ring.owner(key)
    assert sorted(order) == sorted(members)
