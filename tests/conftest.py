"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import numpy as np
import pytest

# tests/ holds no __init__.py packages; make the shared helpers under
# tests/support/ importable (``from support.chaos import ...``) from any
# test module regardless of which directory pytest was invoked from.
_TESTS_DIR = str(Path(__file__).resolve().parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)

from repro.streams.frequency import geometric_counts, scaled_weibull_counts, zipf_counts
from repro.streams.generators import exchangeable_stream, iterate_rows

#: Single shared seed for batch-vs-scalar equivalence tests: both the batch
#: workload and every sketch under test derive from it, so runs are
#: deterministic across machines and pytest orderings.
BATCH_SEED = 20180618


@pytest.fixture
def rng() -> random.Random:
    """A seeded standard-library generator."""
    return random.Random(12345)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """A seeded numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_skewed_model():
    """A small but skewed frequency model (fast to stream in tests)."""
    return scaled_weibull_counts(num_items=120, shape=0.4, target_total=6_000)


@pytest.fixture
def small_geometric_model():
    """A small geometric frequency model."""
    return geometric_counts(num_items=150, success_probability=0.05)


@pytest.fixture
def small_stream(small_skewed_model, np_rng):
    """A shuffled (exchangeable) stream of the small skewed model."""
    return list(iterate_rows(exchangeable_stream(small_skewed_model, rng=np_rng)))


@pytest.fixture
def batch_seed() -> int:
    """The shared deterministic seed for batch-ingestion equivalence tests."""
    return BATCH_SEED


@pytest.fixture
def batch_workload(batch_seed):
    """A deterministic skewed row batch for batch-vs-scalar equivalence tests.

    Returned as a plain Python list; tests that exercise the numpy fast path
    wrap it in ``np.asarray`` themselves so both collapse paths are covered
    on identical data.
    """
    model = zipf_counts(num_items=400, exponent=1.1, total=8_000)
    stream = exchangeable_stream(model, rng=np.random.default_rng(batch_seed))
    return list(iterate_rows(stream))
