"""Deterministic fault injection for cluster elasticity tests.

A :class:`ChaosController` is an async hook that plugs into the router's
``chaos`` seam (:attr:`repro.cluster.router.ClusterRouter.chaos` — copied
onto every :class:`~repro.cluster.client.MemberConnection`, including
connections created later by ``join``).  The router awaits it with
``(member_id, op)`` immediately before each member-bound request, which
is exactly the point where a real network would lose, delay, or sever
the connection.

Faults are *scripted*, not random: :meth:`ChaosController.on` registers
a rule that fires at the ``nth`` matching ``(member_id, op)`` call and
then disarms.  Three actions cover the races the rebalance machinery
must survive:

* ``"drop"`` — raise :class:`~repro.errors.MemberDownError` before the
  request is sent (a lost transfer; the router's bounded retry must
  resend it);
* ``"delay"`` — ``await asyncio.sleep`` for a scripted or seeded
  duration (widens a migration window so concurrent ingest provably
  overlaps it);
* ``"kill"`` — await a test-supplied callback (typically
  ``server.stop()``), modelling a member dying at a precise protocol
  point.

Determinism contract: every hook invocation — fault or clean pass — is
appended to :attr:`ChaosController.log`, and the only nondeterministic
input (unscripted delay durations) comes from a ``random.Random(seed)``
private to the controller.  Two runs of the same scenario with the same
seed therefore produce **identical logs**, which is how the integration
suite asserts "the same chaos seed replays the identical interleaving".
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import MemberDownError

__all__ = ["ChaosController"]

#: Unscripted delays draw uniformly from this window (seconds) using the
#: controller's seeded generator — visible wall-clock effect, bounded test
#: runtime, identical across replays of one seed.
_JITTER_WINDOW = (0.05, 0.15)


class ChaosController:
    """Scripted, seed-reproducible fault injection for member connections.

    Install with ``router.chaos = controller`` *before* the scenario
    starts so every connection (and every connection ``join`` creates
    later) carries the hook.  Rules fire once each, at the ``nth``
    matching call, in registration order when several match the same
    call.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: List[Dict[str, Any]] = []
        self._counts: Dict[Tuple[str, str], int] = {}
        #: Ordered record of every hook invocation: ``("pass"|"drop"|
        #: "delay"|"kill", member_id, op, nth, *detail)``.
        self.log: List[Tuple[Any, ...]] = []

    def on(
        self,
        member_id: str,
        op: str,
        *,
        nth: int = 1,
        action: str = "drop",
        delay: Optional[float] = None,
        callback: Optional[Callable[[], Awaitable[Any]]] = None,
    ) -> "ChaosController":
        """Arm one fault at the ``nth`` (1-based) ``(member_id, op)`` call.

        ``action`` is ``"drop"``, ``"delay"`` or ``"kill"``; ``delay``
        overrides the seeded jitter for delays; ``kill`` requires
        ``callback``.  Returns ``self`` for chaining.
        """
        if action not in ("drop", "delay", "kill"):
            raise ValueError(f"unknown chaos action {action!r}")
        if action == "kill" and callback is None:
            raise ValueError("a 'kill' rule needs a callback")
        if nth < 1:
            raise ValueError(f"nth is 1-based, got {nth}")
        self._rules.append(
            {
                "member_id": member_id,
                "op": op,
                "nth": nth,
                "action": action,
                "delay": delay,
                "callback": callback,
                "fired": False,
            }
        )
        return self

    def _match(self, member_id: str, op: str, count: int) -> Optional[Dict[str, Any]]:
        for rule in self._rules:
            if (
                not rule["fired"]
                and rule["member_id"] == member_id
                and rule["op"] == op
                and rule["nth"] == count
            ):
                return rule
        return None

    async def __call__(self, member_id: str, op: str) -> None:
        key = (member_id, op)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        rule = self._match(member_id, op, count)
        if rule is None:
            self.log.append(("pass", member_id, op, count))
            return
        rule["fired"] = True
        action = rule["action"]
        if action == "drop":
            self.log.append(("drop", member_id, op, count))
            raise MemberDownError(
                f"chaos({self.seed}): dropped {op!r} to {member_id!r} "
                f"(occurrence {count})"
            )
        if action == "delay":
            duration = rule["delay"]
            if duration is None:
                duration = self._rng.uniform(*_JITTER_WINDOW)
            self.log.append(("delay", member_id, op, count, round(duration, 9)))
            await asyncio.sleep(duration)
            return
        self.log.append(("kill", member_id, op, count))
        await rule["callback"]()

    def fired(self) -> List[Tuple[str, str, str, int]]:
        """The faults that actually fired, in firing order."""
        return [entry[:4] for entry in self.log if entry[0] != "pass"]

    def reset(self) -> None:
        """Re-arm every rule and clear counters, log and RNG state."""
        self._rng = random.Random(self.seed)
        self._counts.clear()
        self.log.clear()
        for rule in self._rules:
            rule["fired"] = False

    def __repr__(self) -> str:
        armed = sum(1 for rule in self._rules if not rule["fired"])
        return (
            f"ChaosController(seed={self.seed}, rules={len(self._rules)}, "
            f"armed={armed}, events={len(self.log)})"
        )
