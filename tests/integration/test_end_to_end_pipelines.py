"""Integration tests: full pipelines from stream generation to query answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.merge import merge_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.mapreduce import DistributedSubsetSum
from repro.query.engine import ExactQueryEngine, SketchQueryEngine
from repro.query.filters import field_equals, in_set
from repro.query.marginals import marginal_cells, one_way_marginal
from repro.query.subset_sum import ExactAggregator
from repro.streams.adclick import AdClickDataset
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream, iterate_rows
from repro.streams.pathological import adversarial_theorem11_stream, sorted_stream


class TestSubsetSumPipeline:
    def test_sketch_answers_filtered_sums_within_ci(self, small_skewed_model, np_rng):
        stream = exchangeable_stream(small_skewed_model, rng=np_rng)
        sketch = UnbiasedSpaceSaving(capacity=60, seed=0)
        for row in iterate_rows(stream):
            sketch.update(row)
        exact = ExactAggregator(small_skewed_model.counts)
        # Query the heavy half of the item universe; the sketch keeps most of
        # those items exactly, so the estimate must be close.
        heavy_items = {item for item, _ in small_skewed_model.sorted_items()[:30]}
        predicate = in_set(heavy_items)
        estimate = sketch.subset_sum(predicate)
        truth = exact.subset_sum(predicate)
        assert estimate == pytest.approx(truth, rel=0.1)
        low, high = sketch.subset_sum_confidence_interval(predicate, confidence=0.999)
        assert low <= truth <= high

    def test_query_engine_matches_direct_sketch_queries(self, small_stream):
        sketch = UnbiasedSpaceSaving(capacity=50, seed=1)
        for row in small_stream:
            sketch.update(row)
        engine = SketchQueryEngine(sketch)
        predicate = lambda item: item % 2 == 0  # noqa: E731
        assert engine.select_sum(where=predicate).value == pytest.approx(
            sketch.subset_sum(predicate)
        )
        assert engine.total() == pytest.approx(sketch.total_estimate())

    def test_exact_engine_is_reference_for_sketch_engine(self, small_skewed_model, small_stream):
        sketch = UnbiasedSpaceSaving(capacity=80, seed=2)
        for row in small_stream:
            sketch.update(row)
        sketch_engine = SketchQueryEngine(sketch)
        exact_engine = ExactQueryEngine(
            {item: float(count) for item, count in small_skewed_model.counts.items()}
        )
        group_key = lambda item: item % 3  # noqa: E731
        estimated_groups = sketch_engine.select_sum(group_by=group_key).groups
        exact_groups = exact_engine.select_sum(group_by=group_key).groups
        assert sum(estimated_groups.values()) == pytest.approx(
            sum(exact_groups.values()), rel=1e-6
        )
        for group, exact_total in exact_groups.items():
            assert estimated_groups.get(group, 0.0) == pytest.approx(exact_total, rel=0.35)


class TestAdClickPipeline:
    def test_marginals_close_to_truth_for_large_cells(self):
        dataset = AdClickDataset(num_rows=20_000, seed=3)
        sketch = UnbiasedSpaceSaving(capacity=3_000, seed=3)
        for impression in dataset.impressions():
            sketch.update(impression)
        feature = 1  # advertiser
        estimated = one_way_marginal(sketch, feature)
        exact = dataset.marginal_counts(feature)
        cells = marginal_cells(estimated, exact, min_truth=500)
        assert cells, "expected at least one large marginal cell"
        for cell in cells:
            assert cell.relative_error is not None
            assert cell.relative_error < 0.25

    def test_filter_engine_on_impressions(self):
        dataset = AdClickDataset(num_rows=5_000, seed=4)
        sketch = UnbiasedSpaceSaving(capacity=1_500, seed=4)
        for impression in dataset.impressions():
            sketch.update(impression)
        device_counts = dataset.marginal_counts(6)
        device, truth = max(device_counts.items(), key=lambda kv: kv[1])
        engine = SketchQueryEngine(sketch)
        estimate = engine.select_sum(where=field_equals(6, device)).value
        assert estimate == pytest.approx(truth, rel=0.2)


class TestPathologicalPipelines:
    def test_sorted_stream_unbiased_beats_deterministic(self):
        model = scaled_weibull_counts(num_items=600, shape=0.3, target_total=60_000)
        stream = list(iterate_rows(sorted_stream(model, ascending=True)))
        # Items in the first (least frequent) third arrive first and are the
        # ones Deterministic Space Saving forgets.
        early_items = {item for item, _ in model.sorted_items(ascending=True)[:200]}
        truth = float(model.subset_total(early_items))
        unbiased_errors = []
        deterministic_errors = []
        for seed in range(5):
            unbiased = UnbiasedSpaceSaving(capacity=150, seed=seed)
            deterministic = DeterministicSpaceSaving(capacity=150, seed=seed)
            for row in stream:
                unbiased.update(row)
                deterministic.update(row)
            predicate = lambda item: item in early_items  # noqa: E731
            unbiased_errors.append(abs(unbiased.subset_sum(predicate) - truth))
            deterministic_errors.append(
                abs(
                    sum(
                        value
                        for item, value in deterministic.estimates().items()
                        if item in early_items
                    )
                    - truth
                )
            )
        assert np.mean(unbiased_errors) < np.mean(deterministic_errors)

    def test_theorem11_adversarial_stream_zeroes_deterministic_estimates(self):
        from repro.streams.frequency import geometric_counts

        # Theorem 11 requires every count below 2·n_tot/m, so use a
        # light-tailed model where the largest count is far below that bound.
        model = geometric_counts(num_items=200, success_probability=0.05)
        capacity = 50
        rows, _ = adversarial_theorem11_stream(model, num_bins=capacity)
        deterministic = DeterministicSpaceSaving(capacity, seed=0)
        unbiased = UnbiasedSpaceSaving(capacity, seed=0)
        for row in rows:
            deterministic.update(row)
            unbiased.update(row)
        original_items = set(model.counts)
        deterministic_mass = sum(
            value
            for item, value in deterministic.estimates().items()
            if item in original_items
        )
        unbiased_mass = unbiased.subset_sum(lambda item: item in original_items)
        # Theorem 11: the deterministic sketch retains nothing of the real data.
        assert deterministic_mass == 0.0
        # The unbiased sketch still attributes a non-trivial share of its mass
        # to the real items (roughly half the stream in expectation).
        assert unbiased_mass > 0.2 * model.total


class TestMergePipelines:
    def test_merged_sketch_answers_queries_over_union(self):
        first_model = scaled_weibull_counts(num_items=300, shape=0.4, target_total=20_000)
        second_counts = {item + 1000: count for item, count in first_model.counts.items()}
        rng = np.random.default_rng(5)
        first_sketch = UnbiasedSpaceSaving(capacity=100, seed=5)
        for row in iterate_rows(exchangeable_stream(first_model, rng=rng)):
            first_sketch.update(row)
        second_sketch = UnbiasedSpaceSaving(capacity=100, seed=6)
        from repro.streams.frequency import FrequencyModel

        second_model = FrequencyModel(counts=second_counts)
        for row in iterate_rows(exchangeable_stream(second_model, rng=rng)):
            second_sketch.update(row)
        merged = merge_unbiased(first_sketch, second_sketch, seed=7)
        total_truth = first_model.total + second_model.total
        assert merged.total_estimate() == pytest.approx(total_truth, rel=0.05)
        first_half_estimate = merged.subset_sum(lambda item: item < 1000)
        assert first_half_estimate == pytest.approx(first_model.total, rel=0.35)

    def test_distributed_pipeline_matches_single_sketch_total(self, small_stream):
        single = UnbiasedSpaceSaving(capacity=40, seed=8)
        for row in small_stream:
            single.update(row)
        pipeline = DistributedSubsetSum(capacity=40, num_partitions=4, seed=8)
        pipeline.run(small_stream)
        assert pipeline.merged_sketch.total_estimate() == pytest.approx(
            single.total_estimate(), rel=1e-9
        )
