"""Checkpoint/restore integration: long epoch streams survive restarts.

The scenario mirrors the paper's sorted-stream experiments (figures 8-10):
a stream ordered by epoch, queried per epoch after ingestion.  A process
consuming such a stream is checkpointed mid-flight, "crashes", is restored
from the checkpoint, and finishes the stream — and must end up in exactly
the state an uninterrupted run reaches, for a single sketch, a sharded
ensemble and the multiprocess executor alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.parallel import ParallelSketchExecutor
from repro.distributed.sharded import ShardedSketch
from repro.io import load_checkpoint, save_checkpoint
from repro.streams.epochs import EpochPartition
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import iterate_rows
from repro.streams.pathological import sorted_stream

SEED = 20180618
NUM_EPOCHS = 5


@pytest.fixture(scope="module")
def epoch_setup():
    model = scaled_weibull_counts(num_items=400, shape=0.35, target_total=20_000)
    partition = EpochPartition(model, num_epochs=NUM_EPOCHS, ascending=True)
    rows = list(iterate_rows(sorted_stream(model, ascending=True)))
    return partition, rows


def _epoch_estimates(sketch, partition):
    return [sketch.subset_sum(predicate) for predicate in partition.predicates()]


def test_single_sketch_checkpoint_mid_epoch_stream(tmp_path, epoch_setup):
    partition, rows = epoch_setup
    # Cut inside an epoch, not on a boundary, to make the restart ugly.
    cut = len(rows) * 2 // 5 + 17

    uninterrupted = UnbiasedSpaceSaving(capacity=80, seed=SEED)
    for row in rows:
        uninterrupted.update(row)

    first_process = UnbiasedSpaceSaving(capacity=80, seed=SEED)
    for row in rows[:cut]:
        first_process.update(row)
    checkpoint = tmp_path / "sketch.ckpt"
    save_checkpoint(first_process, checkpoint)
    del first_process  # the "crash"

    second_process = load_checkpoint(checkpoint, expected_type=UnbiasedSpaceSaving)
    for row in rows[cut:]:
        second_process.update(row)

    assert second_process.estimates() == uninterrupted.estimates()
    assert _epoch_estimates(second_process, partition) == _epoch_estimates(
        uninterrupted, partition
    )
    assert second_process.total_estimate() == float(len(rows))


def test_checkpoint_is_atomic_and_overwrites(tmp_path, epoch_setup):
    _, rows = epoch_setup
    sketch = UnbiasedSpaceSaving(capacity=40, seed=SEED)
    checkpoint = tmp_path / "rolling.ckpt"
    snapshots = []
    for start in range(0, len(rows), len(rows) // 4):
        for row in rows[start : start + len(rows) // 4]:
            sketch.update(row)
        save_checkpoint(sketch, checkpoint)
        snapshots.append(sketch.rows_processed)
    # Only the newest snapshot survives; no .tmp litter is left behind.
    assert load_checkpoint(checkpoint).rows_processed == snapshots[-1]
    assert list(tmp_path.iterdir()) == [checkpoint]


def test_sharded_ensemble_checkpoint_on_epoch_stream(tmp_path, epoch_setup):
    partition, rows = epoch_setup
    batches = [
        np.asarray(rows[start : start + 3000]) for start in range(0, len(rows), 3000)
    ]
    half = len(batches) // 2

    uninterrupted = ShardedSketch(capacity=40, num_shards=4, seed=SEED)
    for batch in batches:
        uninterrupted.update_batch(batch)

    first = ShardedSketch(capacity=40, num_shards=4, seed=SEED)
    for batch in batches[:half]:
        first.update_batch(batch)
    checkpoint = tmp_path / "sharded.ckpt"
    first.save_checkpoint(checkpoint)

    resumed = ShardedSketch.load_checkpoint(checkpoint)
    for batch in batches[half:]:
        resumed.update_batch(batch)

    assert resumed.estimates() == uninterrupted.estimates()
    assert _epoch_estimates(resumed, partition) == _epoch_estimates(
        uninterrupted, partition
    )


def test_windowed_session_checkpoint_mid_rotation(tmp_path):
    # A windowed session is checkpointed *mid-rotation* — partway through a
    # pane, with older panes still in the horizon and some already expired —
    # then restored and fed the rest of the stream.  It must match an
    # uninterrupted run pane for pane: same live panes, same estimates,
    # same in-horizon totals, and the same merged hand-off sketch.
    import repro

    rng = np.random.default_rng(SEED)
    items = [int(value) for value in rng.integers(0, 60, size=4_000)]
    times = sorted(float(value) for value in rng.uniform(0.0, 400.0, size=4_000))
    rows = list(zip(items, times))
    # Cut inside a pane (not on a boundary), after some panes have expired.
    cut = next(index for index, (_, ts) in enumerate(rows) if ts > 245.0)

    def build_session():
        return repro.build(
            "unbiased_space_saving", size=48, window="sliding:2m/30s", seed=SEED
        )

    uninterrupted = build_session()
    for item, ts in rows:
        uninterrupted.update(item, timestamp=ts)

    first_process = build_session()
    for item, ts in rows[:cut]:
        first_process.update(item, timestamp=ts)
    assert first_process.estimator.expired_panes > 0     # rotation happened
    checkpoint = tmp_path / "window.ckpt"
    first_process.save_checkpoint(checkpoint)
    del first_process  # the "crash"

    resumed = repro.StreamSession(repro.load_checkpoint(checkpoint))
    assert resumed.window == "sliding:2m/30s"
    for item, ts in rows[cut:]:
        resumed.update(item, timestamp=ts)

    final = uninterrupted.estimator
    restored = resumed.estimator
    assert [index for index, _ in restored.window_panes()] == [
        index for index, _ in final.window_panes()
    ]
    assert restored.estimates() == final.estimates()
    assert restored.total_estimate() == final.total_estimate()
    assert restored.rows_processed == final.rows_processed
    assert restored.merged(seed=0).estimates() == final.merged(seed=0).estimates()


def test_executor_checkpoint_crosses_process_generations(tmp_path, epoch_setup):
    # The executor that resumes from the checkpoint uses a *real* worker
    # pool while the original ran inline — the checkpoint carries shard
    # frames, so the process topology on either side is irrelevant.
    partition, rows = epoch_setup
    batches = [
        np.asarray(rows[start : start + 4000]) for start in range(0, len(rows), 4000)
    ]
    half = len(batches) // 2

    uninterrupted = ShardedSketch(capacity=40, num_shards=4, seed=SEED)
    for batch in batches:
        uninterrupted.update_batch(batch)

    first = ParallelSketchExecutor(40, 4, seed=SEED, num_workers=0)
    for batch in batches[:half]:
        first.update_batch(batch)
    checkpoint = tmp_path / "executor.ckpt"
    first.save_checkpoint(checkpoint)

    resumed = ParallelSketchExecutor.load_checkpoint(checkpoint)
    assert resumed.num_workers == first.num_workers
    with ParallelSketchExecutor(40, 4, seed=SEED, num_workers=2) as pooled:
        # Graft the checkpointed frames into the pooled executor to finish
        # the stream across processes.
        pooled._shard_states = resumed.shard_states()
        pooled._rows_processed = resumed.rows_processed
        pooled._total_weight = resumed.total_weight
        for batch in batches[half:]:
            pooled.update_batch(batch)
        assert pooled.estimates() == uninterrupted.estimates()
        assert _epoch_estimates(pooled, partition) == _epoch_estimates(
            uninterrupted, partition
        )
