"""Cross-mode invariants for the columnar kernel: one workload, five modes.

The columnar store is now the default under every execution mode — inline,
hash-sharded, multiprocess parallel, windowed and served.  This suite pushes
one seeded workload through all five and asserts the invariants that must
hold regardless of mode:

* identical ``rows_processed`` and ``total_weight`` bookkeeping everywhere;
* in the *exact regime* (distinct items <= capacity, so no bin is ever
  contested) identical estimates and identical ``EstimateWithError`` values
  across all five modes;
* in the *churn regime* (distinct >> capacity) bit-identical results between
  the mode pairs defined to be equivalent: inline vs served (batch
  boundaries preserved), sharded vs parallel (same routing + shard seeds);
* at a registry scale of >= 1000 served sessions, per-session isolation —
  every session's estimates match an inline replica of its own workload,
  which would catch free-slot-recycling aliasing (a recycled slot leaking
  counts or labels across sketches sharing numpy buffers).
"""

from __future__ import annotations

import asyncio

import numpy as np

import repro
from repro.serve import SketchRegistry

SEED = 20180618


def reference_workload(rng, *, universe, rows):
    """Zipf-flavoured integer stream, the shape the paper evaluates on."""
    raw = rng.zipf(1.3, size=rows * 3)
    return raw[raw <= universe][:rows].astype(np.int64)


def batches_of(items, size):
    return [items[start : start + size] for start in range(0, len(items), size)]


def drain_served(served_sessions, batch_lists):
    async def drive():
        for served, batches in zip(served_sessions, batch_lists):
            for batch in batches:
                assert served.offer_batch(batch)
        for served in served_sessions:
            await served.drain()

    asyncio.run(drive())


class TestExactRegimeAllModes:
    """distinct <= capacity: every mode must agree exactly, variance 0."""

    def test_five_modes_identical(self):
        rng = np.random.default_rng(SEED)
        items = reference_workload(rng, universe=48, rows=4000)
        batches = batches_of(items, 512)
        timestamps = [np.full(len(batch), 30.0) for batch in batches]

        inline = repro.build("unbiased_space_saving", size=64, seed=7)
        sharded = repro.build(
            "unbiased_space_saving", size=64, seed=7,
            backend="sharded", num_shards=4,
        )
        parallel = repro.build(
            "unbiased_space_saving", size=64, seed=7,
            backend="parallel", num_shards=4, num_workers=2,
        )
        windowed = repro.build(
            "unbiased_space_saving", size=64, seed=7, window="tumbling:1h",
        )
        registry = SketchRegistry(coalesce=4)
        served = registry.create("exact", "unbiased_space_saving", size=64, seed=7)

        try:
            for position, batch in enumerate(batches):
                inline.update_batch(batch)
                sharded.update_batch(batch)
                parallel.update_batch(batch)
                windowed.update_batch(batch, timestamps=timestamps[position])
            drain_served([served], [batches])

            sessions = {
                "inline": inline,
                "sharded": sharded,
                "parallel": parallel,
                "windowed": windowed,
                "served": served.session,
            }
            # The workload fits in capacity, so estimates are exact counts.
            expected = {
                int(item): float(count)
                for item, count in zip(*np.unique(items, return_counts=True))
            }
            half = {item for item in expected if item % 2 == 0}
            answers = {
                name: session.subset_sum(lambda item: item in half)
                for name, session in sessions.items()
            }
            for name, session in sessions.items():
                assert session.rows_processed == len(items), name
                assert session.total_weight == float(len(items)), name
                assert session.estimates() == expected, name
                assert answers[name] == answers["inline"], name
                assert answers[name].variance == 0.0, name
        finally:
            parallel.close()
            asyncio.run(registry.aclose_all())


class TestChurnRegimePairs:
    """distinct >> capacity: modes defined to be equivalent stay bit-exact."""

    def test_inline_equals_served_batchwise(self):
        rng = np.random.default_rng(SEED + 1)
        items = reference_workload(rng, universe=3000, rows=20000)
        batches = batches_of(items, 1000)

        inline = repro.build("unbiased_space_saving", size=32, seed=11)
        # coalesce=1 preserves the producer's batch boundaries, so the
        # served session must replay the identical draw sequence.
        registry = SketchRegistry(coalesce=1)
        served = registry.create("churn", "unbiased_space_saving", size=32, seed=11)
        try:
            for batch in batches:
                inline.update_batch(batch)
            drain_served([served], [batches])

            assert served.session.estimates() == inline.estimates()
            assert served.session.rows_processed == inline.rows_processed
            assert served.session.total_weight == inline.total_weight
            kept = set(list(inline.estimates())[:16])
            assert served.session.subset_sum(
                lambda item: item in kept
            ) == inline.subset_sum(lambda item: item in kept)
        finally:
            asyncio.run(registry.aclose_all())

    def test_sharded_equals_parallel(self):
        rng = np.random.default_rng(SEED + 2)
        items = reference_workload(rng, universe=3000, rows=20000)
        batches = batches_of(items, 1000)

        sharded = repro.build(
            "unbiased_space_saving", size=32, seed=13,
            backend="sharded", num_shards=4,
        )
        parallel = repro.build(
            "unbiased_space_saving", size=32, seed=13,
            backend="parallel", num_shards=4, num_workers=2,
        )
        try:
            for batch in batches:
                sharded.update_batch(batch)
                parallel.update_batch(batch)
            assert parallel.estimates() == sharded.estimates()
            assert parallel.rows_processed == sharded.rows_processed
            assert parallel.total_weight == sharded.total_weight
            kept = set(list(sharded.estimates())[:16])
            assert parallel.subset_sum(
                lambda item: item in kept
            ) == sharded.subset_sum(lambda item: item in kept)
        finally:
            parallel.close()


class TestRegistryScaleIsolation:
    """>= 1000 served columnar sessions: no cross-session state leakage."""

    NUM_SESSIONS = 1000

    def test_thousand_sessions_stay_isolated(self):
        # coalesce=1 keeps every session's batch boundaries identical to
        # the inline replica's, so estimates must match *bit for bit* (the
        # coalescing path is covered by TestExactRegimeAllModes above).
        registry = SketchRegistry(coalesce=1, queue_maxsize=16)
        rng = np.random.default_rng(SEED + 3)
        workloads = []
        served_sessions = []
        try:
            for index in range(self.NUM_SESSIONS):
                # Small capacity + distinct-heavy streams force constant
                # slot churn inside every session, the condition under
                # which a recycling bug would alias state across sessions.
                rows = rng.integers(0, 200, size=40) + index * 1000
                workloads.append(rows.astype(np.int64))
                served_sessions.append(
                    registry.create(
                        f"s{index}", "unbiased_space_saving",
                        size=8, seed=index,
                    )
                )
            drain_served(
                served_sessions,
                [batches_of(rows, 20) for rows in workloads],
            )
            for index, (served, rows) in enumerate(
                zip(served_sessions, workloads)
            ):
                replica = repro.build(
                    "unbiased_space_saving", size=8, seed=index
                )
                for batch in batches_of(rows, 20):
                    replica.update_batch(batch)
                assert served.session.estimates() == replica.estimates(), index
                assert served.session.total_weight == replica.total_weight, index
                # Every retained label must belong to this session's own
                # universe — an aliased slot would leak a foreign label.
                for label in served.session.estimates():
                    assert index * 1000 <= label < index * 1000 + 200, index
        finally:
            asyncio.run(registry.aclose_all())
