"""Registry stress test: 100k+ resident sessions plus demotion accuracy.

Two acceptance properties of the multi-tenant hardening layer:

* The registry's per-session bookkeeping stays O(1) per operation — the
  amortized TTL sweep must make admitting 100 000 sessions linear, and
  lookups/metrics must still work at that population.
* A busy session demoted through the §5.5 capacity reduction, spilled
  to disk and rehydrated answers subset-sum queries within its
  configured error budget: for single-item subsets the realized
  RMSE / N must stay under ``ErrorBudget.target_rrmse``, the bound the
  demoted capacity was solved from (``m >= sqrt(C_S) / target``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.session import StreamSession
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.evaluation.metrics import root_mean_squared_error
from repro.serve import AccuracyTiering, ErrorBudget, SketchRegistry, SketchServer

SESSIONS = 100_000
TARGET_RRMSE = 0.02  # -> demoted capacity 50 for single-item subsets


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_registry_holds_100k_sessions_and_demotion_meets_error_budget(tmp_path):
    clock = FakeClock()
    tiering = AccuracyTiering(
        tmp_path / "tiers",
        default_budget=ErrorBudget(target_rrmse=TARGET_RRMSE, min_capacity=8),
    )
    registry = SketchRegistry(tiering=tiering, clock=clock)

    # --- populate: 100k tiny resident sessions (no TTL, never evicted) ---
    for i in range(SESSIONS):
        registry.adopt(
            f"tenant{i % 1000}/s{i}",
            StreamSession(
                UnbiasedSpaceSaving(capacity=4, seed=3),
                spec_name="unbiased_space_saving",
                backend="inline",
            ),
        )
    assert len(registry) == SESSIONS

    # --- one busy session fed a skewed stream, with a TTL so it idles out ---
    rng = np.random.default_rng(7)
    stream = np.minimum(rng.zipf(1.3, size=120_000), 5_000)
    labels, truth_counts = np.unique(stream, return_counts=True)
    total = float(stream.size)

    busy = registry.create(
        "busy", "unbiased_space_saving", size=400, seed=11, ttl=60.0
    )
    busy.session.update_batch(stream)
    busy.stats.rows_applied = busy.stats.rows_enqueued = stream.size

    # Idle it past its TTL: the sweep demotes (§5.5), spills, releases RAM.
    clock.advance(61.0)
    assert registry.sweep() == [("default", "busy")]
    assert len(registry) == SESSIONS
    assert tiering.holds(("default", "busy"))
    stats = tiering.stats()
    assert stats["demotions"] == 1
    assert stats["rehydrations"] == 0
    assert stats["last_error"] is None

    # --- rehydrate transparently and check the realized error budget ---
    revived = registry.get("busy")
    assert revived.tier == "rehydrated"
    assert revived.demoted_capacity == 50  # ceil(sqrt(1) / 0.02)
    assert revived.stats.rows_applied == stream.size
    # Totals survive demotion up to float accumulation (weight is
    # conserved by the §5.5 reduction).
    assert revived.total().estimate == pytest.approx(total, rel=1e-9)

    estimates = revived.estimates()
    assert len(estimates) <= 50
    # Single-item subset sums across the full true support (items the
    # demoted sketch dropped answer 0): the budget bounds RMSE relative
    # to the stream total by target_rrmse.
    answered = [float(estimates.get(int(label), 0.0)) for label in labels]
    realized = root_mean_squared_error(answered, truth_counts.astype(float)) / total
    assert realized <= TARGET_RRMSE

    # --- the population is still fully serveable around it ---
    sampled = registry.get("tenant500/s500")
    assert sampled.total().estimate == 0.0
    assert registry.get("busy") is revived  # second get: already live

    # --- and the server's O(sessions) metrics scan works at this scale ---
    server = SketchServer(registry=registry)
    snapshot = server.metrics(detail=True)
    assert snapshot["sessions"]["live"] == SESSIONS + 1
    assert snapshot["ingest"]["rows_applied"] == stream.size
    assert snapshot["queues"]["deepest"] == []
    assert snapshot["tiering"]["rehydrations"] == 1
