"""Integration tests: multi-node cluster serving through the router.

Each test boots real :class:`~repro.serve.server.SketchServer` members on
ephemeral loopback ports behind a :class:`~repro.cluster.ClusterRouter`,
and drives them with an **unmodified**
:class:`~repro.serve.client.TCPServeClient` — the router speaks the same
JSON-lines protocol a single server does.  Covered: key-sharded
scatter-gather reads against an inline reference sketch (exact totals,
additive-variance agreement on subset sums), checkpoint-based fail-over
resuming **bit-identically** to an uninterrupted run, the background
health loop, and cluster administration (cluster_info, routing errors).
"""

from __future__ import annotations

import asyncio
import math

import pytest

import repro
from repro.cluster import ClusterRouter
from repro.errors import (
    ClusterError,
    InvalidParameterError,
    MemberDownError,
    SessionNotFoundError,
)
from repro.serve import SketchServer, TCPServeClient
from repro.streams import chunk_stream


def run(coro):
    return asyncio.run(coro)


SPEC = "unbiased_space_saving"
RING_SEED = 11


class Cluster:
    """N servers + router + one TCP client, with one-call teardown."""

    def __init__(self, servers, router, client):
        self.servers = servers
        self.router = router
        self.client = client

    async def close(self):
        await self.client.close()
        await self.router.stop()
        for server in self.servers.values():
            await server.stop()


async def _cluster(root, *, n=3, **router_kwargs) -> Cluster:
    servers, members = {}, []
    for i in range(n):
        member_id = f"m{i}"
        server = SketchServer(
            checkpoint_dir=root / member_id, checkpoint_interval=3600.0
        )
        host, port = await server.start_tcp("127.0.0.1", 0)
        servers[member_id] = server
        members.append((member_id, host, port))
    router = ClusterRouter(
        members, shared_checkpoint_root=root, seed=RING_SEED, **router_kwargs
    )
    host, port = await router.start_tcp("127.0.0.1", 0)
    client = await TCPServeClient.connect(host, port)
    return Cluster(servers, router, client)


# ----------------------------------------------------------------------
# Key-sharded scatter-gather reads
# ----------------------------------------------------------------------
class TestShardedScatterGather:
    def test_sharded_reads_match_inline_within_additive_bound(
        self, tmp_path, batch_workload, batch_seed
    ):
        """Acceptance (a): cluster scatter-gather ≈ one inline sketch.

        Totals are preserved *exactly*; the subset sum agrees with the
        inline sketch within the paper's additive-variance bound (the
        per-shard variances sum — §4 applied across disjoint shards).
        """
        rows = [int(v) for v in batch_workload]
        chunks = chunk_stream(rows, 1000)
        candidates = list(range(40, 90))
        true_subset = float(sum(1 for row in rows if 40 <= row < 90))

        inline = repro.build(SPEC, size=32, seed=batch_seed)
        for chunk in chunks:
            inline.update_batch(chunk)
        inline_subset = inline.subset_sum(lambda item: 40 <= item < 90)

        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create(
                    "clicks", SPEC, size=32, seed=batch_seed, shards=3
                )
                for chunk in chunks:
                    await client.update_batch("clicks", chunk)
                await client.flush("clicks")
                return {
                    "total": await client.total("clicks"),
                    "subset": await client.subset_sum("clicks", candidates),
                    "top": await client.top_k("clicks", 10),
                    "hh": await client.heavy_hitters("clicks", 0.02),
                    "estimates": await client.estimates("clicks"),
                }
            finally:
                await cluster.close()

        got = run(scenario())

        # Space Saving never loses mass, and the disjoint union sums the
        # per-shard totals: the global total is exact.
        assert got["total"].estimate == pytest.approx(float(len(rows)))

        # Additive-variance agreement: cluster and inline are independent
        # estimators of the same subset, so their difference is bounded
        # by the root of the *summed* variances.
        sigma = math.sqrt(
            got["subset"].variance + inline_subset.variance
        )
        assert got["subset"].variance > 0  # shards really did evict
        assert abs(got["subset"].estimate - inline_subset.estimate) <= 8 * sigma + 1
        assert abs(got["subset"].estimate - true_subset) <= (
            8 * math.sqrt(got["subset"].variance) + 1
        )

        # Frequent items: the head of the skewed stream survives sharding.
        from collections import Counter

        true_top = [item for item, _ in Counter(rows).most_common(3)]
        cluster_top = list(got["top"].groups)
        assert cluster_top[0] == true_top[0]
        assert set(true_top) <= set(cluster_top)
        assert set(got["hh"].groups) <= set(got["estimates"])

    def test_point_reads_come_from_the_owning_shard(self, tmp_path):
        """Disjoint shards: point estimate == the estimates() entry, and
        the estimates union carries every shard exactly once."""

        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("s", SPEC, size=64, seed=3, shards=3)
                rows = [f"ad{i % 23}" for i in range(600)]
                await client.update_batch("s", rows)
                await client.flush("s")
                estimates = await client.estimates("s")
                points = {
                    item: (await client.estimate("s", item)).estimate
                    for item in list(estimates)[:8]
                }
                total = await client.total("s")
                return estimates, points, total
            finally:
                await cluster.close()

        estimates, points, total = run(scenario())
        assert len(estimates) == 23  # capacity 64/shard: nothing evicted
        assert sum(estimates.values()) == pytest.approx(600.0)
        assert total.estimate == pytest.approx(600.0)
        for item, value in points.items():
            assert value == estimates[item]

    def test_tuple_labels_survive_scatter_and_gather(self, tmp_path):
        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("pairs", SPEC, size=32, seed=1, shards=2)
                rows = [("site", i % 5) for i in range(100)]
                await client.update_batch("pairs", rows)
                await client.flush("pairs")
                return await client.estimates("pairs")
            finally:
                await cluster.close()

        estimates = run(scenario())
        assert set(estimates) == {("site", i) for i in range(5)}
        assert sum(estimates.values()) == pytest.approx(100.0)

    def test_single_session_forwards_bit_exactly(self, tmp_path, batch_seed):
        """An unsharded session through the router == a local session."""
        rows = [i % 97 for i in range(4000)]
        chunks = chunk_stream(rows, 500)
        local = repro.build(SPEC, size=48, seed=batch_seed)
        for chunk in chunks:
            local.update_batch(chunk)

        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("solo", SPEC, size=48, seed=batch_seed)
                for chunk in chunks:
                    await client.update_batch("solo", chunk)
                    await client.flush("solo")
                return await client.estimates("solo")
            finally:
                await cluster.close()

        assert run(scenario()) == local.estimates()


# ----------------------------------------------------------------------
# Fail-over
# ----------------------------------------------------------------------
class TestFailover:
    @staticmethod
    async def _stream(root, chunks, candidates, *, kill_after=None):
        """Drive one cluster run; optionally kill a shard owner mid-stream."""
        cluster = await _cluster(root)
        client = cluster.client
        try:
            await client.create("clicks", SPEC, size=32, seed=7, shards=3)
            for index, chunk in enumerate(chunks):
                await client.update_batch("clicks", chunk)
                await client.flush("clicks")
                if kill_after is not None and index == kill_after:
                    await client.checkpoint()
                    info = await client.request("cluster_info")
                    route = info["cluster"]["sessions"][0]
                    victim = route["members"][0]  # owns shard 0 by construction
                    await cluster.servers[victim].stop()
            info = await client.request("cluster_info")
            return {
                "estimates": await client.estimates("clicks"),
                "total": (await client.total("clicks")).estimate,
                "subset": (await client.subset_sum("clicks", candidates)).estimate,
                "top": list((await client.top_k("clicks", 10)).groups.items()),
                "failovers": info["cluster"]["failovers"],
            }
        finally:
            await cluster.close()

    def test_failover_resumes_bit_identical(self, tmp_path, batch_workload):
        """Acceptance (b): kill a member mid-stream; answers match an
        uninterrupted run bit-for-bit.

        The killed member's shard resumes from its checkpoint — the
        serialized frame carries the RNG state, so the rehydrated sketch
        continues the stream exactly where the original would have.
        """
        rows = [int(v) for v in batch_workload]
        chunks = chunk_stream(rows, 1000)
        candidates = list(range(0, 50))

        interrupted = run(
            self._stream(tmp_path / "a", chunks, candidates, kill_after=3)
        )
        uninterrupted = run(self._stream(tmp_path / "b", chunks, candidates))

        assert interrupted["failovers"] == 1
        assert uninterrupted["failovers"] == 0
        assert interrupted["estimates"] == uninterrupted["estimates"]
        assert interrupted["total"] == uninterrupted["total"]
        assert interrupted["subset"] == uninterrupted["subset"]
        assert interrupted["top"] == uninterrupted["top"]

    def test_failover_remaps_routes_and_keeps_totals_exact(self, tmp_path):
        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("s", SPEC, size=64, seed=5, shards=3)
                await client.update_batch("s", [f"x{i % 11}" for i in range(900)])
                await client.flush("s")
                await client.checkpoint()
                info = await client.request("cluster_info")
                victim = info["cluster"]["sessions"][0]["members"][0]
                await cluster.servers[victim].stop()
                # Next read fails over inline and still answers exactly.
                total = await client.total("s")
                after = await client.request("cluster_info")
                # Ingest keeps working on the survivors.
                await client.update_batch("s", ["x0"] * 100)
                await client.flush("s")
                total2 = await client.total("s")
                return victim, total, after, total2
            finally:
                await cluster.close()

        victim, total, after, total2 = run(scenario())
        assert total.estimate == pytest.approx(900.0)
        assert total2.estimate == pytest.approx(1000.0)
        members = {m["member_id"]: m for m in after["cluster"]["members"]}
        assert members[victim]["healthy"] is False
        route = after["cluster"]["sessions"][0]
        assert victim not in route["members"]
        assert after["cluster"]["failovers"] == 1

    def test_health_loop_detects_a_dead_member(self, tmp_path):
        async def scenario():
            cluster = await _cluster(
                tmp_path, health_interval=0.05, health_failures=2
            )
            client = cluster.client
            try:
                await client.create("s", SPEC, size=64, seed=5, shards=3)
                await client.update_batch("s", [f"x{i % 7}" for i in range(700)])
                await client.flush("s")
                await client.checkpoint()
                info = await client.request("cluster_info")
                victim = info["cluster"]["sessions"][0]["members"][0]
                await cluster.servers[victim].stop()
                # The background loop — not a client op — must notice.
                for _ in range(200):
                    await asyncio.sleep(0.05)
                    state = await client.request("cluster_info")
                    members = {
                        m["member_id"]: m for m in state["cluster"]["members"]
                    }
                    if not members[victim]["healthy"]:
                        break
                else:
                    raise AssertionError("health loop never failed the member over")
                total = await client.total("s")
                return state, victim, total
            finally:
                await cluster.close()

        state, victim, total = run(scenario())
        assert state["cluster"]["failovers"] == 1
        assert victim not in state["cluster"]["sessions"][0]["members"]
        assert total.estimate == pytest.approx(700.0)

    def test_failover_without_checkpoint_is_a_typed_error(self, tmp_path):
        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("s", SPEC, size=16, seed=1, shards=3)
                await client.update_batch("s", list(range(50)))
                await client.flush("s")
                info = await client.request("cluster_info")
                victim = info["cluster"]["sessions"][0]["members"][0]
                # Simulate a hard crash before any checkpoint: disable the
                # victim's checkpointer (a graceful stop would write a
                # final manifest and defeat the premise), then stop it.
                cluster.servers[victim]._checkpointer = None
                await cluster.servers[victim].stop()
                with pytest.raises((MemberDownError, ClusterError)):
                    await client.total("s")
            finally:
                await cluster.close()

        run(scenario())


# ----------------------------------------------------------------------
# Administration and routing errors
# ----------------------------------------------------------------------
class TestClusterAdmin:
    def test_cluster_info_and_lifecycle(self, tmp_path):
        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                pong = await client.ping()
                assert pong["members"] == {"total": 3, "alive": 3}

                await client.create("a", SPEC, size=16, seed=1)
                await client.create("b", SPEC, size=16, seed=1, shards=2)
                info = await client.request("cluster_info")
                sessions = {s["name"]: s for s in info["cluster"]["sessions"]}
                assert sessions["a"]["shards"] is None
                assert sessions["b"]["shards"] == 2
                assert len(sessions["b"]["members"]) == 2
                assert info["cluster"]["ring"] == {"replicas": 64, "seed": RING_SEED}

                listed = await client.list_sessions()
                assert sorted(s["name"] for s in listed) == ["a", "b"]

                described = await client.info("b")
                assert described["cluster"]["shards"] == 2

                with pytest.raises(InvalidParameterError):
                    await client.create("b", SPEC, size=16)

                await client.drop("b")
                with pytest.raises(SessionNotFoundError):
                    await client.total("b")
                # The member-side shard names are gone too: recreate works.
                await client.create("b", SPEC, size=16, seed=1, shards=2)
            finally:
                await cluster.close()

        run(scenario())

    def test_metrics_aggregates_members(self, tmp_path):
        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("s", SPEC, size=16, seed=1, shards=3)
                await client.update_batch("s", list(range(100)))
                await client.flush("s")
                metrics = await client.metrics()
                assert metrics["cluster"]["members_alive"] == 3
                assert metrics["cluster"]["sessions"] == 1
                applied = sum(
                    member["ingest"]["rows_applied"]
                    for member in metrics["members"].values()
                )
                assert applied == 100
            finally:
                await cluster.close()

        run(scenario())
