"""Integration tests: live elasticity — join/decommission under chaos.

A 3-member cluster gains a 4th member *mid-stream* while the
deterministic fault harness (``tests/support/chaos.py``) drops one
checkpoint-frame transfer and delays another — the races a real network
would produce, pinned to exact protocol points and replayable under a
fixed seed.  The assertions are the paper-level correctness story:

* sessions migrated to the new member read **bit-identically** to an
  uninterrupted local run of the same stream (migration is lossless —
  the source is drained and the frame carries RNG state);
* totals stay exact before, during and after the move, and ingest to
  unaffected keys keeps succeeding *while* the migration window is open
  (availability never drops to zero);
* the same chaos seed replays the identical fault interleaving twice;
* the health loop defers fail-over while a migration epoch is open
  (the two paths can never adopt the same session twice).
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.cluster import ClusterRouter, HashRing
from repro.errors import ClusterError, InvalidParameterError, RouteMovedError
from repro.serve import SketchServer, TCPServeClient
from repro.serve.registry import DEFAULT_TENANT
from repro.streams import chunk_stream
from support.chaos import ChaosController


def run(coro):
    return asyncio.run(coro)


SPEC = "unbiased_space_saving"
RING_SEED = 11
CHAOS_SEED = 20180618


class Cluster:
    """N servers + router + one TCP client, with one-call teardown."""

    def __init__(self, root, servers, router, client):
        self.root = root
        self.servers = servers
        self.router = router
        self.client = client

    async def add_server(self, member_id):
        """Boot (but do not join) one more member server."""
        server = SketchServer(
            checkpoint_dir=self.root / member_id, checkpoint_interval=3600.0
        )
        host, port = await server.start_tcp("127.0.0.1", 0)
        self.servers[member_id] = server
        return host, port

    async def close(self):
        await self.client.close()
        await self.router.stop()
        for server in self.servers.values():
            await server.stop()


async def _cluster(root, *, n=3, **router_kwargs) -> Cluster:
    servers, members = {}, []
    for i in range(n):
        member_id = f"m{i}"
        server = SketchServer(
            checkpoint_dir=root / member_id, checkpoint_interval=3600.0
        )
        host, port = await server.start_tcp("127.0.0.1", 0)
        servers[member_id] = server
        members.append((member_id, host, port))
    router = ClusterRouter(
        members, shared_checkpoint_root=root, seed=RING_SEED, **router_kwargs
    )
    host, port = await router.start_tcp("127.0.0.1", 0)
    client = await TCPServeClient.connect(host, port)
    return Cluster(root, servers, router, client)


def _sessions_claimed_by(new_member, *, existing=("m0", "m1", "m2"), want=2):
    """Session names whose ring owner becomes ``new_member`` after a join.

    Computed from the pure ring (placement is a deterministic function
    of ``(members, replicas, seed)``), so the test *knows* which
    sessions must migrate before it runs the scenario.
    """
    before = HashRing(existing, seed=RING_SEED)
    after = HashRing((*existing, new_member), seed=RING_SEED)
    names = []
    for i in range(300):
        key = (DEFAULT_TENANT, f"solo{i}")
        if before.owner(key) != new_member and after.owner(key) == new_member:
            names.append(f"solo{i}")
        if len(names) == want:
            return names
    raise AssertionError("ring never gave the new member enough sessions")


# ----------------------------------------------------------------------
# The headline scenario: join a 4th member mid-stream under chaos
# ----------------------------------------------------------------------
class TestJoinUnderChaos:
    def test_join_migrates_bit_identical_with_ingest_available(
        self, tmp_path, batch_workload, batch_seed
    ):
        """One dropped transfer + one delayed adopt; reads stay exact.

        ``solo_a`` / ``solo_b`` are chosen (from the ring, ahead of
        time) to be claimed by the new member ``m3``.  The first frame
        transfer to ``m3`` is dropped (the migration's bounded retry
        must resend it) and a later one is delayed (holding the
        migration window open so the concurrent producer provably
        overlaps it).  Afterwards the migrated sessions must equal an
        uninterrupted local run of the same stream **bit for bit**, and
        ingest during the window must have succeeded.
        """
        rows = [int(v) for v in batch_workload]
        chunks = chunk_stream(rows, 1000)
        solo_a, solo_b = _sessions_claimed_by("m3")

        # The uninterrupted reference: one local sketch per solo session,
        # fed the same chunks (pre-join stream + post-join continuation).
        local = repro.build(SPEC, size=48, seed=batch_seed)
        for chunk in chunks:
            local.update_batch(chunk)
        tail = [int(v) % 53 for v in rows[:2000]]
        local_continued = repro.build(SPEC, size=48, seed=batch_seed)
        for chunk in chunks:
            local_continued.update_batch(chunk)
        local_continued.update_batch(tail)

        async def scenario():
            cluster = await _cluster(tmp_path)
            client, router = cluster.client, cluster.router
            chaos = ChaosController(CHAOS_SEED)
            # Transfer 1 to m3 is dropped (occurrence 2 is its resend);
            # the next distinct transfer (occurrence 3) is delayed.
            chaos.on("m3", "adopt", nth=1, action="drop")
            chaos.on("m3", "adopt", nth=3, action="delay", delay=0.3)
            router.chaos = chaos
            try:
                await client.create("clicks", SPEC, size=32, seed=7, shards=3)
                await client.create(solo_a, SPEC, size=48, seed=batch_seed)
                await client.create(solo_b, SPEC, size=48, seed=batch_seed)
                for chunk in chunks:
                    await client.update_batch(solo_a, chunk)
                    await client.update_batch(solo_b, chunk)
                    await client.update_batch("clicks", chunk)
                await client.flush(solo_a)
                await client.flush(solo_b)
                await client.flush("clicks")
                total_before = (await client.total("clicks")).estimate

                availability = {"ok": 0, "during": 0, "failed": 0}
                totals_during = []
                stop = asyncio.Event()

                async def producer():
                    # A second, independent connection: ingest + reads
                    # must keep flowing while the router migrates.
                    address = cluster.router.address
                    async with await TCPServeClient.connect(*address) as conn:
                        while not stop.is_set():
                            in_window = router._rebalance_active
                            try:
                                await asyncio.wait_for(
                                    conn.update_batch("clicks", ["probe"] * 5),
                                    timeout=2.0,
                                )
                                availability["ok"] += 1
                                if in_window:
                                    availability["during"] += 1
                                    read = await conn.total("clicks")
                                    totals_during.append(read.estimate)
                            except Exception:
                                availability["failed"] += 1
                            await asyncio.sleep(0.005)

                host3, port3 = await cluster.add_server("m3")
                producer_task = asyncio.create_task(producer())
                # Let the producer reach steady state before the join.
                await asyncio.sleep(0.05)
                joined = await client.join("m3", host3, port3)
                await asyncio.sleep(0.05)
                stop.set()
                await producer_task

                # Post-rebalance continuation on a migrated session.
                await client.update_batch(solo_a, tail)
                await client.flush(solo_a)
                await client.flush("clicks")
                info = await client.cluster_info()
                return {
                    "joined": joined,
                    "chaos": chaos,
                    "availability": availability,
                    "totals_during": totals_during,
                    "total_before": total_before,
                    "estimates_a": await client.estimates(solo_a),
                    "estimates_b": await client.estimates(solo_b),
                    "total": (await client.total("clicks")).estimate,
                    "info": info,
                }
            finally:
                await cluster.close()

        got = run(scenario())

        # The scripted faults really fired: one dropped transfer, one
        # delayed adopt, in that order.
        fired = [(entry[0], entry[1], entry[2]) for entry in got["chaos"].fired()]
        assert ("drop", "m3", "adopt") in fired
        assert ("delay", "m3", "adopt") in fired
        assert got["joined"]["sessions_moved"] >= 2
        assert got["joined"]["epoch"] == 1

        # Both chosen sessions landed on the new member.
        sessions = {s["name"]: s for s in got["info"]["sessions"]}
        assert sessions[solo_a]["members"] == ["m3"]
        assert sessions[solo_b]["members"] == ["m3"]
        assert got["info"]["sessions_migrated"] == got["joined"]["sessions_moved"]

        # Bit-identical reads after the move: the drained frame carried
        # every row and the RNG state, so the migrated sketch *is* the
        # uninterrupted sketch — including rows streamed after the join.
        assert got["estimates_b"] == local.estimates()
        assert got["estimates_a"] == local_continued.estimates()

        # Ingest availability never dropped to zero: batches succeeded
        # inside the migration window, none failed, and every total read
        # during the window preserved at least the pre-join mass.
        assert got["availability"]["failed"] == 0
        assert got["availability"]["during"] >= 1
        assert all(t >= got["total_before"] for t in got["totals_during"])

        # Exact totals after everything settled: the streamed rows plus
        # every producer probe batch.
        expected = got["total_before"] + 5 * got["availability"]["ok"]
        assert got["total"] == pytest.approx(expected)

    def test_same_chaos_seed_replays_identical_interleaving(
        self, tmp_path, batch_seed
    ):
        """Determinism: two runs of the scripted scenario, one seed, one log.

        The scenario is sequential (no free-running producers), so every
        member-bound request — clean passes included — lands in the
        chaos log in a reproducible order; the logs of two runs must be
        *equal*, faults, occurrence counts, delays and all.
        """
        solo_a, solo_b = _sessions_claimed_by("m3")

        async def scenario(root):
            cluster = await _cluster(root)
            client, router = cluster.client, cluster.router
            chaos = ChaosController(CHAOS_SEED)
            chaos.on("m3", "adopt", nth=1, action="drop")
            chaos.on("m3", "adopt", nth=3, action="delay")  # seeded jitter
            router.chaos = chaos
            try:
                await client.create(solo_a, SPEC, size=32, seed=batch_seed)
                await client.create(solo_b, SPEC, size=32, seed=batch_seed)
                await client.update_batch(solo_a, list(range(500)))
                await client.update_batch(solo_b, list(range(500)))
                await client.flush(solo_a)
                await client.flush(solo_b)
                host3, port3 = await cluster.add_server("m3")
                await client.join("m3", host3, port3)
                estimates = await client.estimates(solo_a)
                return chaos.log, estimates
            finally:
                await cluster.close()

        log_one, estimates_one = run(scenario(tmp_path / "one"))
        log_two, estimates_two = run(scenario(tmp_path / "two"))
        assert log_one == log_two
        assert estimates_one == estimates_two
        # The seeded jitter is in the log, so equality above proves the
        # delay durations replayed too; sanity-check a fault fired.
        assert any(entry[0] == "delay" for entry in log_one)
        assert any(entry[0] == "drop" for entry in log_one)

    def test_kill_action_aborts_migration_without_losing_the_source(
        self, tmp_path
    ):
        """A target killed mid-transfer aborts the join cleanly.

        The 'kill' action stops the new member's server at the adopt
        point (after its retry window), so the migration aborts with
        ``MemberDownError``/``ClusterError`` — and the slot keeps
        serving from its old owner: routes are authoritative and gates
        always reopen.
        """
        solo_a, _ = _sessions_claimed_by("m3")

        async def scenario():
            cluster = await _cluster(tmp_path)
            client, router = cluster.client, cluster.router
            try:
                await client.create(solo_a, SPEC, size=32, seed=1)
                await client.update_batch(solo_a, list(range(400)))
                await client.flush(solo_a)
                host3, port3 = await cluster.add_server("m3")

                async def kill_m3():
                    await cluster.servers["m3"].stop()

                chaos = ChaosController(CHAOS_SEED)
                chaos.on("m3", "adopt", nth=1, action="kill", callback=kill_m3)
                router.chaos = chaos
                with pytest.raises((ClusterError, ConnectionError)):
                    await client.join("m3", host3, port3)
                # The session never moved and still answers exactly.
                total = await client.total(solo_a)
                route = router.routes[(DEFAULT_TENANT, solo_a)]
                assert not route.migrating(0)
                await client.update_batch(solo_a, list(range(100)))
                await client.flush(solo_a)
                after = await client.total(solo_a)
                return total.estimate, after.estimate, route.members
            finally:
                await cluster.close()

        total, after, members = run(scenario())
        assert total == pytest.approx(400.0)
        assert after == pytest.approx(500.0)
        assert members != ["m3"]


# ----------------------------------------------------------------------
# Decommission
# ----------------------------------------------------------------------
class TestDecommission:
    def test_decommission_drains_losslessly_without_a_checkpoint_gap(
        self, tmp_path
    ):
        """Rows applied after the last checkpoint survive a decommission.

        This is the lossless-vs-failover distinction: the member is
        alive, so the drain (flush + forced checkpoint) captures rows a
        crash would have lost.  No explicit ``checkpoint`` is ever
        issued here — the decommission's own forced pass is the only
        frame written.
        """

        async def scenario():
            cluster = await _cluster(tmp_path)
            client = cluster.client
            try:
                await client.create("s", SPEC, size=64, seed=5, shards=4)
                await client.update_batch("s", [f"x{i % 13}" for i in range(1300)])
                await client.flush("s")
                info = await client.cluster_info()
                victim = info["sessions"][0]["members"][0]
                result = await client.decommission(victim)
                total = await client.total("s")
                estimates = await client.estimates("s")
                after = await client.cluster_info()
                return victim, result, total, estimates, after
            finally:
                await cluster.close()

        victim, result, total, estimates, after = run(scenario())
        assert result["decommissioned"] is True
        assert result["sessions_moved"] >= 1
        assert total.estimate == pytest.approx(1300.0)
        assert sum(estimates.values()) == pytest.approx(1300.0)
        member_ids = {m["member_id"] for m in after["members"]}
        assert victim not in member_ids
        assert len(member_ids) == 2
        for session in after["sessions"]:
            assert victim not in session["members"]

    def test_decommission_guards(self, tmp_path):
        """Typed errors: unknown member, down member, last member."""

        async def scenario():
            cluster = await _cluster(tmp_path, n=2)
            client = cluster.client
            try:
                with pytest.raises(ClusterError):
                    await client.decommission("nope")
                await client.checkpoint()
                await cluster.servers["m1"].stop()
                await cluster.router.fail_over("m1")
                with pytest.raises(ClusterError):
                    await client.decommission("m1")  # down: fail_over's job
                with pytest.raises(ClusterError):
                    await client.decommission("m0")  # last healthy member
            finally:
                await cluster.close()

        run(scenario())


# ----------------------------------------------------------------------
# Health loop vs migration (the fail-over race fix)
# ----------------------------------------------------------------------
class TestHealthLoopDeferral:
    def test_health_sweep_defers_failover_while_migration_epoch_open(
        self, tmp_path
    ):
        """A member failing its probe mid-migration is NOT failed over.

        Fail-over and migration both place sessions via ``adopt``;
        racing them could adopt one session onto two members.  The sweep
        must defer (keeping the failure count) while the migration epoch
        is open, then fail over on the first sweep after it closes.
        """

        async def scenario():
            cluster = await _cluster(tmp_path, health_failures=1)
            client, router = cluster.client, cluster.router
            try:
                await client.create("s", SPEC, size=32, seed=3, shards=3)
                await client.update_batch("s", list(range(300)))
                await client.flush("s")
                await client.checkpoint()
                victim = router.routes[(DEFAULT_TENANT, "s")].members[0]
                await cluster.servers[victim].stop()

                # Simulate an open migration epoch around the sweep.
                router._rebalance_active = True
                await router._health_sweep()
                deferred = (
                    router._deferred_failovers,
                    router.membership.get(victim).healthy,
                    router.membership.get(victim).failures,
                )
                router._rebalance_active = False
                await router._health_sweep()
                acted = (
                    router.membership.get(victim).healthy,
                    (await client.cluster_info())["failovers"],
                )
                total = await client.total("s")
                return deferred, acted, total.estimate
            finally:
                await cluster.close()

        deferred, acted, total = run(scenario())
        assert deferred == (1, True, 1)  # counted, not failed over, budget kept
        assert acted == (False, 1)  # next sweep after the epoch acts
        assert total == pytest.approx(300.0)


# ----------------------------------------------------------------------
# RouteMovedError surface
# ----------------------------------------------------------------------
class TestRouteMoved:
    def test_nonblocking_ingest_on_migrating_slot_raises_and_retries(
        self, tmp_path
    ):
        """``block: false`` on a paused slot is a typed RouteMovedError;
        the client's transparent retry lands once the gate reopens."""

        async def scenario():
            cluster = await _cluster(tmp_path)
            client, router = cluster.client, cluster.router
            try:
                await client.create("s", SPEC, size=32, seed=1)
                route = router.routes[(DEFAULT_TENANT, "s")]
                route.pause(0)
                # A zero-retry client sees the typed error...
                async with await TCPServeClient.connect(
                    *router.address, moved_retries=0
                ) as raw:
                    with pytest.raises(RouteMovedError):
                        await raw.update_batch("s", [1, 2, 3], block=False)
                # ...and nothing was enqueued by the rejected batch.
                route.resume(0)
                await client.flush("s")
                zero_total = (await client.total("s")).estimate

                # The default client retries transparently: reopen the
                # gate while its backoff sleeps.
                route.pause(0)

                async def reopen():
                    await asyncio.sleep(0.02)
                    route.resume(0)

                reopen_task = asyncio.create_task(reopen())
                sent = await client.update_batch("s", [1, 2, 3], block=False)
                await reopen_task
                await client.flush("s")
                total = (await client.total("s")).estimate
                return zero_total, sent, total
            finally:
                await cluster.close()

        zero_total, sent, total = run(scenario())
        assert zero_total == 0.0
        assert sent == 3
        assert total == pytest.approx(3.0)

    def test_blocking_ingest_waits_on_the_gate_instead(self, tmp_path):
        """Blocking ops queue on a paused slot and proceed on resume."""

        async def scenario():
            cluster = await _cluster(tmp_path)
            client, router = cluster.client, cluster.router
            try:
                await client.create("s", SPEC, size=32, seed=1)
                route = router.routes[(DEFAULT_TENANT, "s")]
                route.pause(0)
                send = asyncio.create_task(client.update_batch("s", [1, 2, 3]))
                await asyncio.sleep(0.05)
                assert not send.done()  # parked on the migration gate
                route.resume(0)
                sent = await asyncio.wait_for(send, timeout=5.0)
                await client.flush("s")
                return sent, (await client.total("s")).estimate
            finally:
                await cluster.close()

        sent, total = run(scenario())
        assert sent == 3
        assert total == pytest.approx(3.0)
