"""Kill/restore integration tests for the exactly-once pipeline driver.

The contract under test (see ``docs/connectors.md``): kill a
:class:`~repro.connectors.PipelineDriver` anywhere — between ticks or
mid-tick, in process or across TCP — restore it from its
offsets+frame checkpoint into a *fresh* server, drain the rest of the
source, and every query answer is **bit-identical** to a run that never
crashed.  Plus the edge cases around the offset manifest: checkpoints
written mid-tick through the ``on_partition_applied`` hook, permanently
empty partitions, and a partition that rewound under a recorded offset
(refused with a typed :class:`~repro.errors.StaleOffsetError`).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.connectors import (
    FileTailSource,
    FirehoseServer,
    LogSource,
    PipelineDriver,
    SocketFirehoseSource,
)
from repro.errors import ConnectorError, StaleOffsetError
from repro.io import load_checkpoint
from repro.connectors import DriverCheckpoint
from repro.serve import ServeClient, SketchServer, TCPServeClient
from repro.streams import bursty_soak_stream

SPEC = "unbiased_space_saving"
CAPACITY = 32
SEED = 11
BATCH_ROWS = 40


def run(coro):
    return asyncio.run(coro)


def workload(rows: int = 600, seed: int = 5):
    """A deterministic bursty stream small enough for tier-1."""
    return bursty_soak_stream(
        rows,
        hours=1.0,
        num_items=40,
        bursts_per_hour=2.0,
        burst_rows=40,
        rng=np.random.default_rng(seed),
    )


class _Killed(RuntimeError):
    """Stands in for the driver process dying mid-run."""


async def _create_session(client, name: str = "pipe") -> None:
    await client.create(name, spec=SPEC, size=CAPACITY, seed=SEED)


async def _reference_answers(source):
    """Final answers of an uninterrupted drain of ``source``."""
    async with SketchServer() as server:
        client = ServeClient(server)
        await _create_session(client)
        driver = PipelineDriver(
            source, client, session="pipe", batch_rows=BATCH_ROWS
        )
        summary = await driver.run(final_checkpoint=False)
        return (
            await client.estimates("pipe"),
            await client.total("pipe"),
            summary,
        )


async def _killed_then_restored_answers(
    source, checkpoint_path, *, kill_after_applies: int
):
    """Kill mid-run at a fresh mid-tick checkpoint; restore; drain."""
    applies = 0

    async with SketchServer() as server:
        client = ServeClient(server)
        await _create_session(client)
        driver = None

        async def kill_hook(partition: str, rows: int) -> None:
            nonlocal applies
            applies += 1
            if applies == kill_after_applies:
                await driver.checkpoint()
                raise _Killed(partition)

        driver = PipelineDriver(
            source,
            client,
            session="pipe",
            batch_rows=BATCH_ROWS,
            checkpoint_path=checkpoint_path,
            on_partition_applied=kill_hook,
        )
        with pytest.raises(_Killed):
            await driver.run(final_checkpoint=False)
        # The crash: nothing from this server or driver survives.

    async with SketchServer() as server:
        client = ServeClient(server)
        restored = await PipelineDriver.restore(
            checkpoint_path, source, client, batch_rows=BATCH_ROWS
        )
        summary = await restored.run(final_checkpoint=False)
        return (
            await client.estimates("pipe"),
            await client.total("pipe"),
            summary,
        )


# ----------------------------------------------------------------------
# The headline guarantee: bit-identical kill/resume
# ----------------------------------------------------------------------
class TestBitIdenticalResume:
    @pytest.mark.parametrize("kill_after_applies", [1, 2, 3, 4, 7, 11])
    def test_mid_tick_kill_resumes_bit_identically(
        self, tmp_path, kill_after_applies
    ):
        """Every kill point — tick boundaries and mid-tick alike."""

        async def scenario():
            source = LogSource.from_rows(
                workload(), num_partitions=3, seed=2
            )
            ref_estimates, ref_total, ref_summary = await _reference_answers(
                source
            )
            estimates, total, summary = await _killed_then_restored_answers(
                source,
                tmp_path / "driver.ckpt",
                kill_after_applies=kill_after_applies,
            )
            assert estimates == ref_estimates  # exact, not approximate
            assert total == ref_total
            assert summary["rows_ingested"] == ref_summary["rows_ingested"]
            assert summary["offsets"] == ref_summary["offsets"]

        run(scenario())

    def test_periodic_checkpoints_resume_from_the_latest(self, tmp_path):
        """run() checkpoints every N ticks; a crash between checkpoints
        replays only the rows after the last one, exactly once."""

        async def scenario():
            source = LogSource.from_rows(workload(), num_partitions=2, seed=3)
            ref_estimates, ref_total, _ = await _reference_answers(source)
            path = tmp_path / "driver.ckpt"

            async with SketchServer() as server:
                client = ServeClient(server)
                await _create_session(client)
                driver = PipelineDriver(
                    source,
                    client,
                    session="pipe",
                    batch_rows=BATCH_ROWS,
                    checkpoint_path=path,
                    checkpoint_every=2,
                )
                # A few ticks, then "crash" with no final checkpoint.
                await driver.run(max_ticks=3, final_checkpoint=False)

            checkpoint = load_checkpoint(path, expected_type=DriverCheckpoint)
            assert checkpoint.ticks == 2  # the every-2-ticks one

            async with SketchServer() as server:
                client = ServeClient(server)
                restored = await PipelineDriver.restore(
                    path, source, client, batch_rows=BATCH_ROWS
                )
                assert restored.ticks == 2
                await restored.run(final_checkpoint=False)
                assert await client.estimates("pipe") == ref_estimates
                assert await client.total("pipe") == ref_total

        run(scenario())

    def test_kill_resume_over_tcp(self, tmp_path):
        """The same guarantee with the serve layer across a real socket."""

        async def scenario():
            source = LogSource.from_rows(workload(400), num_partitions=2, seed=9)
            path = tmp_path / "driver.ckpt"

            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port)
            await _create_session(client)
            reference = PipelineDriver(
                source, client, session="pipe", batch_rows=BATCH_ROWS
            )
            await reference.run(final_checkpoint=False)
            ref_estimates = await client.estimates("pipe")
            ref_total = await client.total("pipe")
            await client.close()
            await server.stop()

            applies = 0
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port)
            await _create_session(client)
            driver = None

            async def kill_hook(partition: str, rows: int) -> None:
                nonlocal applies
                applies += 1
                if applies == 3:  # mid tick 2 of the 2-partition sweep
                    await driver.checkpoint()
                    raise _Killed(partition)

            driver = PipelineDriver(
                source,
                client,
                session="pipe",
                batch_rows=BATCH_ROWS,
                checkpoint_path=path,
                on_partition_applied=kill_hook,
            )
            with pytest.raises(_Killed):
                await driver.run(final_checkpoint=False)
            await client.close()
            await server.stop()

            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port)
            restored = await PipelineDriver.restore(
                path, source, client, batch_rows=BATCH_ROWS
            )
            await restored.run(final_checkpoint=False)
            assert await client.estimates("pipe") == ref_estimates
            assert await client.total("pipe") == ref_total
            await client.close()
            await server.stop()

        run(scenario())


# ----------------------------------------------------------------------
# Offset-manifest edge cases
# ----------------------------------------------------------------------
class TestOffsetEdgeCases:
    def test_checkpoint_between_flush_and_next_poll_is_consistent(
        self, tmp_path
    ):
        """A checkpoint written at a partition boundary mid-tick pairs the
        sketch frame with exactly the offsets of the rows it absorbed."""

        async def scenario():
            source = LogSource.from_rows(workload(300), num_partitions=3, seed=4)
            path = tmp_path / "driver.ckpt"
            observed = []

            async with SketchServer() as server:
                client = ServeClient(server)
                await _create_session(client)
                driver = None

                async def checkpointing_hook(partition, rows):
                    checkpoint = await driver.checkpoint()
                    observed.append(
                        (partition, dict(checkpoint.offsets), checkpoint.rows_applied)
                    )

                driver = PipelineDriver(
                    source,
                    client,
                    session="pipe",
                    batch_rows=BATCH_ROWS,
                    checkpoint_path=path,
                    on_partition_applied=checkpointing_hook,
                )
                await driver.run(final_checkpoint=False)

            # Every mid-tick checkpoint's offset table sums to exactly the
            # rows its frame had applied: offsets and sketch state never
            # drift apart, at any boundary.
            for _, offsets, rows_applied in observed:
                assert sum(offsets.values()) == rows_applied

        run(scenario())

    def test_empty_partitions_do_not_block_resume(self, tmp_path):
        async def scenario():
            # Partition the rows so at least one partition stays empty
            # forever: explicit appends to p0 only, p1/p2 never written.
            source = LogSource(num_partitions=3, seed=0)
            for item, weight, ts in workload(200):
                source.append(item, weight, ts, partition="p0")
            assert source.end_offsets()["p1"] == 0
            assert source.end_offsets()["p2"] == 0

            ref_estimates, ref_total, _ = await _reference_answers(source)
            estimates, total, summary = await _killed_then_restored_answers(
                source, tmp_path / "driver.ckpt", kill_after_applies=4
            )
            assert estimates == ref_estimates
            assert total == ref_total
            assert summary["offsets"]["p1"] == 0
            assert summary["offsets"]["p2"] == 0

        run(scenario())

    def test_rewound_partition_refused_with_typed_error(self, tmp_path):
        """A log truncated below a checkpointed offset must not silently
        replay from a fabricated position."""

        async def scenario():
            source = LogSource.from_rows(workload(300), num_partitions=2, seed=6)
            path = tmp_path / "driver.ckpt"

            async with SketchServer() as server:
                client = ServeClient(server)
                await _create_session(client)
                driver = PipelineDriver(
                    source,
                    client,
                    session="pipe",
                    batch_rows=BATCH_ROWS,
                    checkpoint_path=path,
                )
                await driver.run(max_ticks=2, final_checkpoint=True)
                recorded = dict(driver.offsets)

            # The partition loses its tail below the recorded offset.
            source.truncate("p0", recorded["p0"] - 1)

            async with SketchServer() as server:
                client = ServeClient(server)
                restored = await PipelineDriver.restore(
                    path, source, client, batch_rows=BATCH_ROWS
                )
                with pytest.raises(StaleOffsetError):
                    await restored.run(final_checkpoint=False)
                # The stale offset was refused, not rewritten.
                assert restored.offsets["p0"] == recorded["p0"]

        run(scenario())

    def test_dropped_batch_fails_loudly_without_committing(self):
        """The serving layer isolates poison batches; the driver must turn
        that silent drop into a loud error and keep the offset."""

        async def scenario():
            source = LogSource.from_rows(workload(100), num_partitions=1)
            async with SketchServer() as server:
                client = ServeClient(server)
                await _create_session(client)  # plain session: no window
                driver = PipelineDriver(
                    source,
                    client,
                    session="pipe",
                    batch_rows=BATCH_ROWS,
                    # Force timestamped batches at a session that rejects
                    # them — the serving queue drops them as poison.
                    with_timestamps=True,
                )
                with pytest.raises(ConnectorError, match="exactly-once"):
                    await driver.tick()
                assert driver.offsets["p0"] == 0  # nothing committed

        run(scenario())


# ----------------------------------------------------------------------
# Other sources through the same driver
# ----------------------------------------------------------------------
class TestOtherSources:
    def test_file_tail_resume_is_bit_identical(self, tmp_path):
        async def scenario():
            source = FileTailSource(tmp_path / "events.jsonl", partition="events")
            source.write_rows(workload(300))
            ref_estimates, ref_total, _ = await _reference_answers(source)
            estimates, total, _ = await _killed_then_restored_answers(
                source, tmp_path / "driver.ckpt", kill_after_applies=2
            )
            assert estimates == ref_estimates
            assert total == ref_total

        run(scenario())

    def test_firehose_resume_is_bit_identical(self, tmp_path):
        """Kill/restore with the source across a socket: the consumer's
        recorded offsets are all that's needed to resume."""

        async def scenario():
            backing = LogSource.from_rows(workload(300), num_partitions=2, seed=8)
            with FirehoseServer(backing) as firehose:
                source = SocketFirehoseSource(*firehose.address)
                ref_estimates, ref_total, _ = await _reference_answers(source)
                estimates, total, _ = await _killed_then_restored_answers(
                    source, tmp_path / "driver.ckpt", kill_after_applies=3
                )
                assert estimates == ref_estimates
                assert total == ref_total

        run(scenario())
