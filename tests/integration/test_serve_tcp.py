"""Integration tests: the TCP wire protocol and server checkpoint/restore.

Each test boots a real :class:`~repro.serve.server.SketchServer` on an
ephemeral loopback port (or drives the in-process client for the
persistence paths) and exercises the full round trip: JSON-lines framing,
label-type preservation, error mapping back onto the
:mod:`repro.errors` hierarchy, timestamped (windowed) ingest over the
wire, and exact resume of served sessions — including a windowed session
checkpointed mid-rotation — from the background checkpointer's manifest.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

import repro
from repro.errors import (
    InvalidParameterError,
    QuotaExceededError,
    RouteMovedError,
    SerializationError,
    ServeError,
    ServerClosedError,
    SessionNotFoundError,
)
from repro.serve import SketchServer, TCPServeClient, restore_registry
from repro.serve.client import RemoteServeError
from repro.serve.checkpoint import MANIFEST_NAME
from repro.streams import chunk_stream


def run(coro):
    return asyncio.run(coro)


async def _tcp_server():
    """A started server on an ephemeral port, plus a connected client."""
    server = SketchServer()
    host, port = await server.start_tcp("127.0.0.1", 0)
    client = await TCPServeClient.connect(host, port)
    return server, client


# ----------------------------------------------------------------------
# Wire protocol round trips
# ----------------------------------------------------------------------
class TestTCPProtocol:
    def test_full_session_lifecycle_over_the_wire(self):
        async def scenario():
            server, client = await _tcp_server()
            try:
                assert (await client.ping())["pong"] is True
                info = await client.create(
                    "clicks", "unbiased_space_saving", size=64,
                    seed=42, tenant="ads",
                )
                assert info["spec"] == "unbiased_space_saving"

                rows = [f"ad{i % 7}" for i in range(200)]
                sent = await client.update_batch("clicks", rows, tenant="ads")
                assert sent == 200
                await client.update("clicks", "ad0", 3.0, tenant="ads")
                assert await client.flush("clicks", tenant="ads") == 201

                total = await client.total("clicks", tenant="ads")
                assert total.estimate == 203.0  # 200 unit rows + weight 3

                estimates = await client.estimates("clicks", tenant="ads")
                point = await client.estimate("clicks", "ad0", tenant="ads")
                assert point.estimate == estimates["ad0"]

                subset = await client.subset_sum(
                    "clicks", ["ad0", "ad1"], tenant="ads"
                )
                assert subset.estimate == estimates["ad0"] + estimates["ad1"]

                top = await client.top_k("clicks", 3, tenant="ads")
                assert list(top.groups) == sorted(
                    estimates, key=estimates.get, reverse=True
                )[:3]
                hitters = await client.heavy_hitters("clicks", 0.1, tenant="ads")
                assert set(hitters.groups) <= set(estimates)

                sessions = await client.list_sessions(tenant="ads")
                assert [s["name"] for s in sessions] == ["clicks"]
                await client.drop("clicks", tenant="ads")
                assert await client.list_sessions(tenant="ads") == []
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_wire_equals_local_session(self, batch_workload, batch_seed):
        """Acceptance: estimates over TCP == hand-built session, same stream."""
        chunks = chunk_stream(
            [int(v) for v in batch_workload], 500
        )
        hand = repro.build("unbiased_space_saving", size=64, seed=batch_seed)
        for chunk in chunks:
            hand.update_batch(chunk)

        async def scenario():
            server, client = await _tcp_server()
            try:
                # coalesce=1: the served call sequence matches the local loop.
                await client.create(
                    "s", "unbiased_space_saving", size=64, seed=batch_seed,
                    queue_maxsize=len(chunks) + 1,
                )
                server.registry.get("s")._coalesce = 1
                for chunk in chunks:
                    await client.update_batch("s", chunk)
                await client.flush("s")
                return await client.estimates("s")
            finally:
                await client.close()
                await server.stop()

        assert run(scenario()) == hand.estimates()

    def test_tuple_labels_survive_the_wire(self):
        async def scenario():
            server, client = await _tcp_server()
            try:
                await client.create("f", "unbiased_space_saving", size=16, seed=0)
                labels = [("us", 1), ("us", 2), ("eu", 1), ("us", 1)]
                await client.update_batch("f", labels)
                await client.flush("f")
                estimates = await client.estimates("f")
                assert estimates[("us", 1)] == 2.0
                subset = await client.subset_sum("f", [("us", 1), ("eu", 1)])
                assert subset.estimate == 3.0
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_windowed_timestamped_ingest_over_the_wire(self):
        async def scenario():
            server, client = await _tcp_server()
            try:
                await client.create(
                    "w", "unbiased_space_saving", size=32,
                    window="sliding:2m/1m", seed=0,
                )
                await client.update_batch(
                    "w", ["a", "b"], timestamps=[10.0, 30.0]
                )
                await client.update_batch("w", ["c"], timestamps=[150.0])
                await client.flush("w")
                estimates = await client.estimates("w")
                info = await client.info("w")
                return estimates, info
            finally:
                await client.close()
                await server.stop()

        estimates, info = run(scenario())
        # t=150 expired the first pane out of the 2-minute horizon.
        assert sorted(estimates) == ["c"]
        assert info["window"] == "sliding:2m/1m"

    def test_remote_errors_map_to_local_classes(self):
        async def scenario():
            server, client = await _tcp_server()
            try:
                with pytest.raises(SessionNotFoundError):
                    await client.total("ghost")
                with pytest.raises(InvalidParameterError):
                    await client.create("bad", "no_such_spec", size=8)
                with pytest.raises((InvalidParameterError, RemoteServeError)):
                    await client._call("frobnicate")
                # The connection survived all three failures.
                assert (await client.ping())["pong"] is True
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_malformed_line_gets_error_response_and_connection_survives(self):
        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()  # hello banner
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "SerializationError"
                writer.write(
                    b'{"id": 9, "op": "ping"}\n'
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is True and response["id"] == 9
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(scenario())

    def test_malformed_line_error_does_not_echo_previous_request_id(self):
        """Pipelined clients correlate by id; a parse error has no id."""

        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()  # hello banner
                writer.write(b'{"id": 41, "op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["id"] == 41
                writer.write(b"garbage\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["id"] is None  # NOT the stale 41
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(scenario())

    def test_overlong_line_gets_error_envelope_before_close(self, monkeypatch):
        from repro.serve import protocol as proto

        monkeypatch.setattr(proto, "MAX_LINE_BYTES", 1024)

        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()  # hello banner
                writer.write(b"x" * 4096 + b"\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert "exceeds" in response["error"]["message"]
                assert await reader.readline() == b""  # then a clean close
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(scenario())

    def test_client_rejects_wire_version_mismatch(self):
        async def scenario():
            async def bad_hello(reader, writer):
                writer.write(b'{"hello": "repro.serve", "wire_version": 99}\n')
                await writer.drain()
                await reader.readline()
                writer.close()

            fake = await asyncio.start_server(bad_hello, "127.0.0.1", 0)
            host, port = fake.sockets[0].getsockname()[:2]
            try:
                with pytest.raises(SerializationError, match="wire version"):
                    await TCPServeClient.connect(host, port)
            finally:
                fake.close()
                await fake.wait_closed()

        run(scenario())

    def test_concurrent_tcp_producers(self):
        """Several connections feed one session; nothing is lost."""

        async def scenario():
            server = SketchServer(queue_maxsize=4)
            host, port = await server.start_tcp("127.0.0.1", 0)
            try:
                control = await TCPServeClient.connect(host, port)
                await control.create("s", "unbiased_space_saving", size=64, seed=0)

                async def producer(offset: int) -> int:
                    async with await TCPServeClient.connect(host, port) as client:
                        sent = 0
                        for start in range(0, 100, 20):
                            sent += await client.update_batch(
                                "s", list(range(offset + start, offset + start + 20))
                            )
                        return sent

                totals = await asyncio.gather(*(producer(i * 1000) for i in range(4)))
                await control.flush("s")
                grand = await control.total("s")
                await control.close()
                return sum(totals), grand.estimate
            finally:
                await server.stop()

        sent, estimate = run(scenario())
        assert sent == 400
        assert estimate == 400.0


# ----------------------------------------------------------------------
# Production hardening over the wire: metrics, quotas, tiering
# ----------------------------------------------------------------------
class TestRouteMovedOverTheWire:
    """Wire mapping and client retry policy for ``RouteMovedError``.

    The router raises it when non-blocking ingest hits a slot that is
    mid-migration; by contract the rejected op had no effect, so the
    client may always retry.  These tests pin the envelope → typed-error
    mapping and the transparent retry loop without needing a cluster:
    a monkeypatched bare-server op stands in for the migrating router.
    """

    def test_envelope_maps_to_typed_error_and_connection_survives(
        self, monkeypatch
    ):
        async def moved(self, request):
            raise RouteMovedError("slot 0 is migrating")

        monkeypatch.setattr(SketchServer, "_op_flush", moved)

        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port, moved_retries=0)
            try:
                with pytest.raises(RouteMovedError, match="migrating"):
                    await client.flush("clicks")
                # A moved rejection is not a connection failure.
                assert (await client.ping())["pong"] is True
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_client_retries_transparently_until_the_route_settles(
        self, monkeypatch
    ):
        calls = []

        async def settles_on_third(self, request):
            calls.append(request.get("id"))
            if len(calls) < 3:
                raise RouteMovedError("still migrating")
            return {"rows_applied": 7}

        monkeypatch.setattr(SketchServer, "_op_flush", settles_on_third)

        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            # Default retry budget (2 retries) covers two moved rejections.
            client = await TCPServeClient.connect(
                host, port, moved_backoff=0.001
            )
            try:
                assert await client.flush("clicks") == 7
            finally:
                await client.close()
                await server.stop()

        run(scenario())
        assert len(calls) == 3
        assert len(set(calls)) == 3  # each retry is a fresh request id

    def test_exhausted_retry_budget_surfaces_the_error(self, monkeypatch):
        calls = []

        async def always_moved(self, request):
            calls.append(1)
            raise RouteMovedError("the route kept moving")

        monkeypatch.setattr(SketchServer, "_op_flush", always_moved)

        async def scenario():
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(
                host, port, moved_retries=1, moved_backoff=0.001
            )
            try:
                with pytest.raises(RouteMovedError):
                    await client.flush("clicks")
            finally:
                await client.close()
                await server.stop()

        run(scenario())
        assert len(calls) == 2  # the first attempt plus exactly one retry

    def test_bare_server_rejects_cluster_only_ops(self):
        """``join``/``decommission`` are protocol ops but router-only —
        a plain member server must refuse them, not half-handle them."""

        async def scenario():
            server, client = await _tcp_server()
            try:
                for op in ("join", "decommission"):
                    with pytest.raises(
                        (InvalidParameterError, RemoteServeError),
                        match="unknown serve op",
                    ):
                        await client._call(op, member="m9")
            finally:
                await client.close()
                await server.stop()

        run(scenario())


class TestTCPHardening:
    def test_metrics_op_returns_live_counters(self):
        async def scenario():
            server, client = await _tcp_server()
            try:
                await client.create("s", "unbiased_space_saving", size=64, seed=0)
                await client.update_batch("s", ["a", "b", "a"])
                await client.flush("s")
                await client.total("s")
                await client.estimate("s", "a")
                return await client.metrics(detail=True)
            finally:
                await client.close()
                await server.stop()

        snapshot = run(scenario())
        # The snapshot crossed the JSON wire and still carries live data.
        assert snapshot["sessions"]["live"] == 1
        assert snapshot["ingest"]["rows_applied"] == 3
        assert snapshot["queries"]["total"]["count"] == 1
        assert snapshot["queries"]["estimate"]["p99_ms"] is not None
        assert snapshot["connections_served"] >= 1
        assert snapshot["uptime_sec"] > 0.0

    def test_quota_error_maps_over_the_wire(self):
        from repro.serve import QuotaManager, TenantQuota

        async def scenario():
            quota = QuotaManager(
                default=TenantQuota(max_sessions=1, max_rows_per_sec=100.0)
            )
            server = SketchServer(quota=quota)
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port)
            try:
                await client.create("a", "unbiased_space_saving", size=16, seed=0)
                with pytest.raises(QuotaExceededError):
                    await client.create(
                        "b", "unbiased_space_saving", size=16, seed=0
                    )
                # The connection survived the refusal...
                assert (await client.ping())["pong"] is True
                # ...and the rejection is visible in the metrics snapshot.
                snapshot = await client.metrics()
                assert snapshot["quota"]["sessions_rejected"] == 1
            finally:
                await client.close()
                await server.stop()

        run(scenario())

    def test_info_reports_tier_over_the_wire(self, tmp_path):
        from repro.serve import AccuracyTiering, ErrorBudget

        async def scenario():
            tiering = AccuracyTiering(
                tmp_path / "tiers",
                default_budget=ErrorBudget(target_rrmse=0.02, min_capacity=16),
            )
            server = SketchServer(tiering=tiering, max_sessions=1)
            host, port = await server.start_tcp("127.0.0.1", 0)
            client = await TCPServeClient.connect(host, port)
            try:
                await client.create("old", "unbiased_space_saving", size=400, seed=0)
                await client.update_batch("old", [f"i{i % 30}" for i in range(1000)])
                await client.flush("old")
                # Creating a second session LRU-evicts "old" into the spill
                # tier; the next access rehydrates it transparently.
                await client.create("new", "unbiased_space_saving", size=16, seed=1)
                info = await client.info("old")
                assert info["tier"] == "rehydrated"
                assert info["demoted_capacity"] == 50
                total = await client.total("old")
                assert total.estimate == 1000.0
                snapshot = await client.metrics()
                assert snapshot["tiering"]["rehydrations"] == 1
            finally:
                await client.close()
                await server.stop()

        run(scenario())


# ----------------------------------------------------------------------
# Checkpoint / restore
# ----------------------------------------------------------------------
class TestServeCheckpointRestore:
    def test_restart_resumes_every_session_exactly(self, tmp_path, batch_seed):
        """Stop mid-stream, restore, replay the rest: equals uninterrupted."""
        rng = np.random.default_rng(batch_seed)
        stream = rng.integers(0, 500, size=4_000)
        first, second = stream[:2_000], stream[2_000:]
        first_chunks = chunk_stream(first, 250)
        second_chunks = chunk_stream(second, 250)

        # The uninterrupted reference run.
        reference = repro.build("unbiased_space_saving", size=64, seed=batch_seed)
        for chunk in first_chunks + second_chunks:
            reference.update_batch(chunk)

        async def phase_one():
            async with SketchServer(
                checkpoint_dir=tmp_path, checkpoint_interval=3600.0
            ) as server:
                client = server.client
                await client.create(
                    "s", "unbiased_space_saving", size=64,
                    seed=batch_seed, coalesce=1,
                )
                for chunk in first_chunks:
                    await client.update_batch("s", chunk)
                await client.flush("s")
            # __aexit__ wrote the final checkpoint after draining.

        async def phase_two():
            server = SketchServer.restore(tmp_path)
            async with server:
                client = server.client
                served = server.registry.get("s")
                assert served.stats.rows_applied == 2_000
                served._coalesce = 1
                for chunk in second_chunks:
                    await client.update_batch("s", chunk)
                await client.flush("s")
                return await client.estimates("s"), await client.total("s")

        run(phase_one())
        assert (tmp_path / MANIFEST_NAME).exists()
        estimates, total = run(phase_two())
        assert estimates == reference.estimates()
        assert total.estimate == reference.total().estimate == 4_000.0

    def test_windowed_session_checkpoints_mid_rotation(self, tmp_path):
        """A served sliding window restores mid-rotation and keeps rotating."""
        window = "sliding:2m/30s"

        def feed_plan():
            # Rows crossing several pane boundaries, checkpoint taken with
            # the ring mid-horizon (some panes live, some expired).
            early = (["a", "b", "a"], [5.0, 20.0, 40.0])
            mid = (["c", "a"], [65.0, 95.0])
            late = (["d", "b"], [130.0, 200.0])  # t=200 expires the early panes
            return early, mid, late

        early, mid, late = feed_plan()

        reference = repro.build(
            "unbiased_space_saving", size=32, window=window, seed=1
        )
        for items, ts in (early, mid, late):
            reference.update_batch(items, timestamps=ts)

        async def phase_one():
            async with SketchServer(
                checkpoint_dir=tmp_path, checkpoint_interval=3600.0
            ) as server:
                client = server.client
                await client.create(
                    "w", "unbiased_space_saving", size=32,
                    window=window, seed=1, coalesce=1,
                )
                for items, ts in (early, mid):
                    await client.update_batch("w", items, timestamps=ts)
                await client.flush("w")

        async def phase_two():
            server = SketchServer.restore(tmp_path)
            async with server:
                client = server.client
                served = server.registry.get("w")
                served._coalesce = 1
                info = await client.info("w")
                assert info["window"] == window
                items, ts = late
                await client.update_batch("w", items, timestamps=ts)
                await client.flush("w")
                return await client.estimates("w")

        run(phase_one())
        assert run(phase_two()) == reference.estimates()

    def test_background_checkpointer_survives_a_failing_pass(self, tmp_path):
        """One transient checkpoint error must not end persistence forever."""

        async def scenario():
            async with SketchServer(
                checkpoint_dir=tmp_path, checkpoint_interval=0.02
            ) as server:
                client = server.client
                await client.create("s", "unbiased_space_saving", size=16, seed=0)
                await client.update_batch("s", [1, 2, 3])
                await client.flush("s")
                scheduler = server.checkpointer
                real = scheduler.checkpoint_now
                calls = {"n": 0}

                def flaky(**kwargs):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise OSError("disk momentarily full")
                    return real(**kwargs)

                scheduler.checkpoint_now = flaky
                for _ in range(200):
                    if scheduler.checkpoints_written > 0:
                        break
                    await asyncio.sleep(0.01)
                scheduler.checkpoint_now = real
                # The first background pass failed and was recorded...
                assert calls["n"] >= 2
                # ...but the task kept running and a later pass succeeded.
                assert scheduler.checkpoints_written > 0
                assert scheduler.last_error is None

        run(scenario())

    def test_unserializable_adopted_session_is_served_but_not_persisted(
        self, tmp_path
    ):
        from repro.api.session import StreamSession
        from repro.serve.checkpoint import checkpoint_registry
        from repro.serve.registry import SketchRegistry

        class AdHoc:
            def __init__(self):
                self.seen = []

            def update(self, item, weight=1.0):
                self.seen.append((item, float(weight)))

        registry = SketchRegistry()
        registry.create("real", "unbiased_space_saving", size=16, seed=0)
        registry.adopt("adhoc", StreamSession(AdHoc()))
        manifest = checkpoint_registry(registry, tmp_path)
        assert [entry["name"] for entry in manifest["sessions"]] == ["real"]

    def test_background_checkpointer_fires_on_interval(self, tmp_path):
        async def scenario():
            async with SketchServer(
                checkpoint_dir=tmp_path, checkpoint_interval=0.05
            ) as server:
                client = server.client
                await client.create("s", "unbiased_space_saving", size=16, seed=0)
                await client.update_batch("s", [1, 2, 3])
                await client.flush("s")
                for _ in range(100):
                    if server.checkpointer.checkpoints_written > 0:
                        break
                    await asyncio.sleep(0.02)
                assert server.checkpointer.checkpoints_written > 0
            manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
            assert [s["name"] for s in manifest["sessions"]] == ["s"]
            assert manifest["sessions"][0]["rows_applied"] == 3

        run(scenario())

    def test_multi_tenant_restore_preserves_namespaces(self, tmp_path):
        async def phase_one():
            async with SketchServer(checkpoint_dir=tmp_path) as server:
                client = server.client
                await client.create(
                    "clicks", "unbiased_space_saving", size=16,
                    seed=0, tenant="ads", ttl=900.0,
                )
                await client.create(
                    "clicks", "misra_gries", size=8, tenant="fraud"
                )
                await client.update_batch("clicks", ["x", "y"], tenant="ads")
                await client.update_batch("clicks", ["z"], tenant="fraud")
                await client.flush("clicks", tenant="ads")
                await client.flush("clicks", tenant="fraud")

        run(phase_one())
        registry = restore_registry(tmp_path)
        ads = registry.get("clicks", tenant="ads")
        fraud = registry.get("clicks", tenant="fraud")
        assert ads.ttl == 900.0
        assert ads.session.spec_name == "unbiased_space_saving"
        assert fraud.session.spec_name == "misra_gries"
        assert sorted(ads.estimates()) == ["x", "y"]
        assert sorted(fraud.estimates()) == ["z"]

    def test_restore_requires_manifest(self, tmp_path):
        with pytest.raises(SerializationError, match="manifest"):
            restore_registry(tmp_path / "nowhere")


# ----------------------------------------------------------------------
# Client resilience and graceful server shutdown
# ----------------------------------------------------------------------
class TestClientResilienceAndShutdown:
    def test_connect_retries_then_raises_typed_error(self):
        """Exhausted retries surface as ServerClosedError, not raw OSError."""
        async def scenario():
            # Bind-then-close guarantees the port is unbound when we dial.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            with pytest.raises(ServerClosedError, match="3 attempt"):
                await TCPServeClient.connect(
                    "127.0.0.1", port, retries=2, backoff=0.01
                )

        run(scenario())

    def test_connect_retry_succeeds_once_listener_appears(self):
        """A slow-to-boot server is reached by the backoff loop."""
        async def scenario():
            server = SketchServer()
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            async def boot_late():
                await asyncio.sleep(0.15)
                await server.start_tcp("127.0.0.1", port)

            boot = asyncio.ensure_future(boot_late())
            try:
                client = await TCPServeClient.connect(
                    "127.0.0.1", port, retries=8, backoff=0.05
                )
                assert (await client.ping())["pong"] is True
                await client.close()
            finally:
                await boot
                await server.stop()

        run(scenario())

    def test_request_timeout_raises_serve_error(self):
        """A stalled server trips the per-request deadline, not a hang."""
        async def scenario():
            async def stalling_peer(reader, writer):
                hello = {"server": "stall", "wire_version": 1}
                writer.write((json.dumps(hello) + "\n").encode())
                await writer.drain()
                await reader.readline()  # swallow the request, never answer
                await asyncio.sleep(30)

            listener = await asyncio.start_server(stalling_peer, "127.0.0.1", 0)
            port = listener.sockets[0].getsockname()[1]
            try:
                client = await TCPServeClient.connect(
                    "127.0.0.1", port, request_timeout=0.1
                )
                with pytest.raises(ServeError, match="timed out"):
                    await client.request("ping")
            finally:
                listener.close()
                await listener.wait_closed()

        run(scenario())

    def test_stop_cancels_in_flight_request_with_error_envelope(self):
        """Graceful shutdown answers in-flight requests before dropping them."""
        async def scenario():
            server, client = await _tcp_server()

            started = asyncio.Event()

            async def _op_slow(request):
                started.set()
                await asyncio.sleep(30)
                return {"never": True}

            server._op_slow = _op_slow
            pending = asyncio.ensure_future(client.request("slow"))
            await asyncio.wait_for(started.wait(), 5)
            # stop() must not wait the 30s the handler would take.
            await asyncio.wait_for(server.stop(), 5)
            with pytest.raises(ServerClosedError, match="shutting down"):
                await pending

        run(scenario())

    def test_stop_with_idle_connection_returns_promptly(self):
        async def scenario():
            server, client = await _tcp_server()
            assert (await client.ping())["pong"] is True
            # The client holds an open, idle connection; stop() must not
            # block on it (the reader task is parked in readline()).
            await asyncio.wait_for(server.stop(), 5)

        run(scenario())
