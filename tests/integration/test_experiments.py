"""Integration tests for the per-figure experiment harness (small scales)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.evaluation.experiments import get_experiment, list_experiments
from repro.evaluation.figures_pathological import SortedStreamStudy
from repro.evaluation.reporting import format_summary, format_table


class TestRegistry:
    def test_all_figures_registered(self):
        ids = list_experiments()
        assert len(ids) == 11
        for figure in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            assert any(identifier.startswith(f"fig{figure}_") for identifier in ids)
        assert "windowed_trending" in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_experiment("fig99_nothing")


class TestIidExperiments:
    def test_fig2_inclusion_probabilities_track_pps(self):
        result = get_experiment(
            "fig2_inclusion_probabilities",
            num_items=300,
            target_total=20_000,
            capacity=60,
            num_trials=15,
            seed=0,
        ).run()
        summary = result.summary()
        assert summary["correlation"] > 0.85
        assert summary["mean_abs_deviation"] < 0.15
        assert len(result.rows()) == 300

    def test_fig3_unbiased_close_to_priority_and_output_shape(self):
        result = get_experiment(
            "fig3_relative_error_200",
            target_total=20_000,
            num_trials=2,
            num_subsets=8,
            capacity=100,
            seed=1,
        ).run()
        summary = result.summary()
        for name in ("weibull_0.32", "geometric_0.03", "weibull_0.15"):
            unbiased = summary[f"{name}/unbiased_space_saving"]
            priority = summary[f"{name}/priority_sampling"]
            assert unbiased <= priority * 2.5
        assert result.rows()
        assert format_table(result.rows())

    def test_fig4_bottom_k_much_worse_on_skewed_data(self):
        result = get_experiment(
            "fig4_relative_error_100",
            target_total=20_000,
            num_trials=2,
            num_subsets=8,
            seed=2,
        ).run()
        summary = result.summary()
        assert (
            summary["weibull_0.15/bottom_k"]
            > 2.0 * summary["weibull_0.15/unbiased_space_saving"]
        )

    def test_fig5_unbiased_competitive_with_priority(self):
        result = get_experiment(
            "fig5_vs_priority",
            target_total=60_000,
            num_trials=6,
            num_subsets=15,
            capacity=100,
            seed=3,
        ).run()
        summary = result.summary()
        # The full-scale claim (the sketch matches or beats priority sampling)
        # is asserted by the benchmark; at this reduced test scale we only
        # require it to be in the same competitive regime.
        assert summary["fraction_subsets_unbiased_wins_or_ties"] >= 0.15
        assert summary["median_relative_efficiency"] > 0.35
        assert format_summary(summary)


class TestAdClickExperiment:
    def test_fig6_marginals_reasonable(self):
        result = get_experiment(
            "fig6_marginals", num_rows=6_000, capacity=800, num_trials=1, seed=4
        ).run()
        summary = result.summary()
        assert set(summary) == {
            "one_way/unbiased_space_saving",
            "one_way/priority_sampling",
            "two_way/unbiased_space_saving",
            "two_way/priority_sampling",
        }
        # The sketch should be in the same error regime as priority sampling.
        assert (
            summary["one_way/unbiased_space_saving"]
            <= 3.0 * summary["one_way/priority_sampling"] + 0.05
        )
        assert result.rows()


class TestWindowedTrendingExperiment:
    def test_bursts_detected_and_uss_error_competitive(self):
        result = get_experiment(
            "windowed_trending",
            num_rows=8_000,
            num_items=500,
            capacity=100,
            num_trials=2,
            seed=0,
        ).run()
        summary = result.summary()
        assert summary["windowed_uss/detection_rate"] >= 0.9
        # Unbiased panes should not lose to Count-Min's collision bias.
        assert (
            summary["windowed_uss/mean_relative_error"]
            <= summary["windowed_countmin/mean_relative_error"] + 0.02
        )
        rows = result.rows()
        assert len(rows) == 2 * 2 * 4  # trials x methods x bursts
        assert {row["method"] for row in rows} == {
            "windowed_uss",
            "windowed_countmin",
        }


class TestPathologicalExperiments:
    def test_fig1_merge_profile_totals(self):
        result = get_experiment("fig1_merge_profile", seed=5).run()
        summary = result.summary()
        assert summary["unbiased_total"] == pytest.approx(
            summary["combined_total"], rel=0.25
        )
        assert summary["misra_gries_total"] < summary["combined_total"]

    def test_fig7_two_half_unbiased_better_on_first_half(self):
        result = get_experiment(
            "fig7_pathological_two_half",
            num_items_per_half=200,
            target_total_per_half=10_000,
            capacity=60,
            num_trials=4,
            num_subsets=8,
            seed=6,
        ).run()
        summary = result.summary()
        assert (
            summary["unbiased_rrmse_first_half"]
            < summary["deterministic_rrmse_first_half"]
        )
        assert len(result.rows()) == 4

    def test_fig8_to_10_shared_study_views(self):
        study = SortedStreamStudy(
            num_items=400,
            target_total=30_000,
            capacity=80,
            num_epochs=5,
            num_trials=5,
            seed=7,
        ).run()
        coverage = study.coverage_by_epoch()
        assert len(coverage) == 5
        assert all(0.0 <= value <= 1.0 for value in coverage)
        # Later (large-count) epochs should have excellent coverage.
        assert coverage[-1] >= 0.6
        widths = study.mean_ci_width_by_epoch()
        assert all(width >= 0.0 for width in widths)
        ratios = study.stddev_ratio_by_epoch()
        assert len(ratios) == 5
        rrmse_deterministic = study.rrmse_by_epoch("deterministic")
        rrmse_unbiased = study.rrmse_by_epoch("unbiased")
        # Figure 10's headline: Deterministic Space Saving returns 0 for all
        # early epochs (100% error) while Unbiased Space Saving does far
        # better on the later, large epochs.
        assert rrmse_deterministic[0] == pytest.approx(100.0)
        assert rrmse_unbiased[-1] < rrmse_deterministic[0]

    def test_fig8_and_fig9_and_fig10_experiment_wrappers(self):
        study = SortedStreamStudy(
            num_items=300,
            target_total=20_000,
            capacity=60,
            num_epochs=4,
            num_trials=3,
            seed=8,
        )
        fig8 = get_experiment("fig8_ci_coverage")
        fig8.study = study
        coverage_result = fig8.run()
        assert set(coverage_result) == {"epoch_truths", "mean_ci_width", "coverage"}
        fig9 = get_experiment("fig9_stddev_accuracy")
        fig9.study = study
        variance_result = fig9.run()
        assert set(variance_result) == {
            "stddev_overestimation",
            "pathological_vs_pps_stddev",
        }
        fig10 = get_experiment("fig10_deterministic_vs_unbiased")
        fig10.study = study
        error_result = fig10.run()
        assert len(error_result["deterministic_pct_rrmse"]) == 4
