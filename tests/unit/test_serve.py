"""Unit tests for the serving layer: registry, served sessions, protocol.

The integration suite (``tests/integration/test_serve_tcp.py``) covers
the TCP protocol and checkpoint/restore; this module covers the
in-process mechanics — multi-tenant namespacing, TTL/LRU eviction,
backpressure on the bounded ingest queue, writer coalescing, clean
shutdown draining, and equality between a served session and a
hand-built :func:`repro.build` session on the same seeded stream.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro.errors import (
    BackpressureError,
    InvalidParameterError,
    SerializationError,
    ServerClosedError,
    SessionNotFoundError,
)
from repro.serve import (
    ServedSession,
    ServeStats,
    SketchRegistry,
    SketchServer,
)
from repro.serve import protocol
from repro.serve.load import LatencyReport, deal_round_robin, run_producers
from repro.streams import chunk_stream


class FakeClock:
    """A manually-advanced monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Registry: namespacing + eviction
# ----------------------------------------------------------------------
class TestSketchRegistry:
    def test_create_get_drop_roundtrip(self):
        registry = SketchRegistry()
        served = registry.create("clicks", "unbiased_space_saving", size=32, seed=0)
        assert registry.get("clicks") is served
        assert ("default", "clicks") in registry
        registry.drop("clicks")
        with pytest.raises(SessionNotFoundError):
            registry.get("clicks")

    def test_tenants_are_hard_namespaces(self):
        registry = SketchRegistry()
        a = registry.create("s", "unbiased_space_saving", size=16, tenant="a", seed=1)
        b = registry.create("s", "unbiased_space_saving", size=16, tenant="b", seed=2)
        assert a is not b
        assert registry.get("s", tenant="a") is a
        assert registry.get("s", tenant="b") is b
        with pytest.raises(SessionNotFoundError):
            registry.get("s", tenant="c")
        registry.drop("s", tenant="a")
        # Tenant b's same-named session is untouched.
        assert registry.get("s", tenant="b") is b

    def test_duplicate_key_rejected(self):
        registry = SketchRegistry()
        registry.create("s", "unbiased_space_saving", size=16)
        with pytest.raises(InvalidParameterError, match="already exists"):
            registry.create("s", "misra_gries", size=16)

    def test_unknown_session_error_is_keyerror_with_readable_str(self):
        registry = SketchRegistry()
        with pytest.raises(SessionNotFoundError) as excinfo:
            registry.get("ghost")
        assert isinstance(excinfo.value, KeyError)
        assert "ghost" in str(excinfo.value)
        with pytest.raises(SessionNotFoundError):
            registry.drop("ghost")

    def test_ttl_eviction_on_access(self):
        clock = FakeClock()
        registry = SketchRegistry(default_ttl=10.0, clock=clock)
        registry.create("hot", "unbiased_space_saving", size=16)
        clock.advance(9.0)
        registry.get("hot")  # lookup alone does not refresh the idle clock
        clock.advance(9.0)   # 18s since last *traffic*
        with pytest.raises(SessionNotFoundError):
            registry.get("hot")
        assert registry.evicted_total == 1

    def test_query_traffic_refreshes_ttl(self):
        clock = FakeClock()
        registry = SketchRegistry(default_ttl=10.0, clock=clock)
        served = registry.create("hot", "unbiased_space_saving", size=16)
        clock.advance(8.0)
        served.total()  # real traffic touches the session
        clock.advance(8.0)
        assert registry.get("hot") is served  # 8s idle < 10s TTL

    def test_sweep_reports_expired_keys(self):
        clock = FakeClock()
        registry = SketchRegistry(default_ttl=5.0, clock=clock)
        registry.create("a", "unbiased_space_saving", size=16)
        registry.create("b", "unbiased_space_saving", size=16, ttl=100.0)
        clock.advance(6.0)
        assert registry.sweep() == [("default", "a")]
        assert len(registry) == 1

    def test_lru_capacity_eviction(self):
        registry = SketchRegistry(max_sessions=2)
        registry.create("a", "unbiased_space_saving", size=16)
        registry.create("b", "unbiased_space_saving", size=16)
        registry.get("a")  # refresh a's LRU position: b is now oldest
        registry.create("c", "unbiased_space_saving", size=16)
        assert registry.get("a") and registry.get("c")
        with pytest.raises(SessionNotFoundError):
            registry.get("b")
        assert registry.evicted_total == 1

    def test_get_sweeps_expired_sessions_registry_wide(self):
        """A get/query-only workload must not leak idle-expired sessions."""
        clock = FakeClock()
        registry = SketchRegistry(default_ttl=10.0, clock=clock)
        hot = registry.create("hot", "unbiased_space_saving", size=16)
        registry.create("cold", "unbiased_space_saving", size=16)
        clock.advance(8.0)
        hot.total()  # keep hot alive; cold goes idle
        clock.advance(8.0)
        registry.get("hot")  # looking up hot evicts the expired cold too
        assert len(registry) == 1
        assert registry.evicted_total == 1

    def test_list_sessions_filters_by_tenant(self):
        registry = SketchRegistry()
        registry.create("x", "unbiased_space_saving", size=16, tenant="a")
        registry.create("y", "unbiased_space_saving", size=16, tenant="b")
        all_infos = registry.list_sessions()
        assert {(info["tenant"], info["name"]) for info in all_infos} == {
            ("a", "x"),
            ("b", "y"),
        }
        assert [info["name"] for info in registry.list_sessions(tenant="b")] == ["y"]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            SketchRegistry(max_sessions=0)
        session = repro.build("unbiased_space_saving", size=8)
        with pytest.raises(InvalidParameterError):
            ServedSession(session, queue_maxsize=0)
        with pytest.raises(InvalidParameterError):
            ServedSession(session, coalesce=0)
        with pytest.raises(InvalidParameterError):
            ServedSession(session, ttl=-1.0)


# ----------------------------------------------------------------------
# Served session: ingest loop, backpressure, shutdown
# ----------------------------------------------------------------------
class TestServedSession:
    def test_served_equals_hand_built_session(self, batch_workload, batch_seed):
        """Acceptance: served estimates == hand-built repro.build() session."""
        chunks = chunk_stream(np.asarray(batch_workload, dtype=np.int64), 500)

        hand = repro.build("unbiased_space_saving", size=64, seed=batch_seed)
        for chunk in chunks:
            hand.update_batch(chunk)

        async def drive():
            registry = SketchRegistry()
            # coalesce=1 preserves the exact update_batch call sequence,
            # so the served sketch's RNG draws match the hand-built one's.
            served = registry.create(
                "s", "unbiased_space_saving", size=64, seed=batch_seed, coalesce=1
            )
            for chunk in chunks:
                await served.put_batch(chunk)
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.estimates() == hand.estimates()
        assert served.total().estimate == hand.total().estimate
        predicate = lambda item: item % 3 == 0  # noqa: E731
        assert served.subset_sum(predicate).estimate == hand.subset_sum(predicate).estimate
        assert served.top_k(5).groups == hand.top_k(5).groups

    def test_served_sharded_backend_equals_hand_built(self, batch_workload, batch_seed):
        chunks = chunk_stream(np.asarray(batch_workload, dtype=np.int64), 1000)
        hand = repro.build(
            "unbiased_space_saving", size=32, backend="sharded",
            num_shards=4, seed=batch_seed,
        )
        for chunk in chunks:
            hand.update_batch(chunk)

        async def drive():
            registry = SketchRegistry()
            served = registry.create(
                "s", "unbiased_space_saving", size=32, backend="sharded",
                num_shards=4, seed=batch_seed, coalesce=1,
            )
            for chunk in chunks:
                await served.put_batch(chunk)
            await served.drain()
            return served.estimates()

        assert asyncio.run(drive()) == hand.estimates()

    def test_offer_batch_backpressure(self):
        async def drive():
            registry = SketchRegistry(queue_maxsize=1)
            served = registry.create("s", "unbiased_space_saving", size=16, seed=0)
            # The writer task has had no chance to run yet, so the first
            # offer fills the 1-slot queue and the second must bounce.
            assert served.offer_batch([1, 2, 3]) is True
            assert served.offer_batch([4, 5, 6]) is False
            assert served.stats.rows_enqueued == 3
            await served.drain()
            # Space freed: the offer succeeds again.
            assert served.offer_batch([4, 5, 6]) is True
            await served.drain()
            return served.stats

        stats = asyncio.run(drive())
        assert stats.rows_applied == 6
        assert stats.rows_pending == 0

    def test_put_batch_blocks_then_completes(self):
        """Awaiting producers ride out a full queue without losing rows."""

        async def drive():
            registry = SketchRegistry(queue_maxsize=1)
            served = registry.create("s", "unbiased_space_saving", size=64, seed=0)
            chunks = [[i, i, i + 1] for i in range(20)]
            await asyncio.gather(
                *(served.put_batch(chunk) for chunk in chunks)
            )
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.stats.rows_applied == 60
        assert served.session.rows_processed == 60
        assert served.stats.max_queue_depth <= 1

    def test_client_nonblocking_update_raises_backpressure_error(self):
        async def drive():
            server = SketchServer(queue_maxsize=1)
            client = server.client
            await client.create("s", "unbiased_space_saving", size=16, seed=0)
            assert await client.update_batch("s", [1, 2], block=False)
            with pytest.raises(BackpressureError):
                await client.update_batch("s", [3, 4], block=False)
            await client.flush("s")
            await server.stop()

        asyncio.run(drive())

    def test_writer_coalesces_queued_batches(self):
        async def drive():
            registry = SketchRegistry(queue_maxsize=32, coalesce=8)
            served = registry.create("s", "unbiased_space_saving", size=64, seed=0)
            for start in range(0, 40, 10):
                assert served.offer_batch(list(range(start, start + 10)))
            await served.drain()
            return served.stats

        stats = asyncio.run(drive())
        assert stats.rows_applied == 40
        assert stats.batches_enqueued == 4
        # All four batches were waiting when the writer first ran, so they
        # were applied in fewer update_batch calls than were enqueued.
        assert stats.batches_applied < 4
        assert stats.batches_coalesced == 4 - stats.batches_applied

    def test_mixed_weighted_and_unit_batches_coalesce_correctly(self):
        async def drive():
            registry = SketchRegistry(coalesce=8)
            served = registry.create("s", "unbiased_space_saving", size=64, seed=0)
            assert served.offer_batch(["a", "b"])                  # unit weights
            assert served.offer_batch(["a", "c"], [2.0, 3.0])       # explicit
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.stats.batches_applied == 1  # proved they merged
        estimates = served.estimates()
        assert estimates["a"] == 3.0  # 1 (unit) + 2 (weighted)
        assert estimates["b"] == 1.0
        assert estimates["c"] == 3.0
        assert served.total().estimate == 7.0

    def test_clean_shutdown_drains_in_flight_batches(self):
        async def drive():
            registry = SketchRegistry(queue_maxsize=64)
            served = registry.create("s", "unbiased_space_saving", size=64, seed=0)
            for start in range(0, 100, 10):
                assert served.offer_batch(list(range(start, start + 10)))
            # Nothing has been applied yet — aclose must drain, not drop.
            await served.aclose()
            return served

        served = asyncio.run(drive())
        assert served.closed
        assert served.stats.rows_applied == 100
        assert served.session.rows_processed == 100
        # Closed sessions reject new rows but still answer queries.
        with pytest.raises(ServerClosedError):
            served.offer_batch([1])
        assert served.total().estimate == 100.0

    def test_server_stop_drains_every_session(self):
        async def drive():
            server = SketchServer()
            client = server.client
            await client.create("a", "unbiased_space_saving", size=32, seed=0)
            await client.create("b", "unbiased_space_saving", size=32, seed=1)
            served_a = server.registry.get("a")
            served_b = server.registry.get("b")
            assert served_a.offer_batch([1] * 50)
            assert served_b.offer_batch([2] * 70)
            await server.stop()
            return served_a, served_b

        served_a, served_b = asyncio.run(drive())
        assert served_a.stats.rows_applied == 50
        assert served_b.stats.rows_applied == 70

    def test_dropping_a_busy_session_releases_blocked_producers(self):
        """close_nowait must not strand put_batch/drain waiters forever."""

        async def drive():
            registry = SketchRegistry(queue_maxsize=1)
            served = registry.create("s", "unbiased_space_saving", size=16, seed=0)
            assert served.offer_batch([1, 2])  # fill the only slot
            blocked_put = asyncio.ensure_future(served.put_batch([3, 4]))
            blocked_drain = asyncio.ensure_future(served.drain())
            await asyncio.sleep(0)  # both are now parked on the queue
            registry.drop("s")
            # Both waiters must settle promptly instead of hanging.
            await asyncio.wait_for(
                asyncio.gather(blocked_put, blocked_drain, return_exceptions=True),
                timeout=2.0,
            )
            return served.stats

        stats = asyncio.run(drive())
        assert stats.failed_batches >= 1  # the dropped batches are accounted

    def test_active_ingest_is_not_ttl_idle(self):
        """A session whose writer is applying rows must not be evictable."""

        async def drive():
            clock = FakeClock()
            registry = SketchRegistry(default_ttl=10.0, clock=clock)
            served = registry.create("busy", "unbiased_space_saving", size=32, seed=0)
            assert served.offer_batch([1] * 5)
            clock.advance(60.0)  # a long stall before the writer runs
            await served.drain()  # the writer applies, touching the session
            assert not served.expired()
            return registry.get("busy") is served

        assert asyncio.run(drive())

    def test_poison_batch_recorded_not_fatal(self):
        """A failing update_batch is recorded and the writer keeps serving."""

        async def drive():
            registry = SketchRegistry(coalesce=1)
            # All-time sessions reject timestamps: that surfaces inside the
            # writer, not at enqueue time.
            served = registry.create("s", "unbiased_space_saving", size=16, seed=0)
            await served.put_batch([1, 2], timestamps=[1.0, 2.0])
            await served.drain()
            assert served.stats.failed_batches == 1
            assert "CapabilityError" in served.stats.last_error
            # The session still ingests and answers normally afterwards.
            await served.put_batch([1, 2, 3])
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.stats.rows_applied == 3
        assert served.total().estimate == 3.0

    def test_poison_batch_does_not_take_down_coalesced_neighbours(self):
        """One bad batch in a coalesced group: only its rows are dropped."""

        async def drive():
            registry = SketchRegistry(coalesce=8)
            served = registry.create("s", "unbiased_space_saving", size=64, seed=0)
            # All four sit in the queue before the writer runs, so they
            # coalesce into one group; the timestamped one is invalid on
            # an all-time session.
            assert served.offer_batch([1] * 10)
            assert served.offer_batch([2] * 10, timestamps=[1.0] * 10)
            assert served.offer_batch([3] * 10)
            assert served.offer_batch([4] * 10)
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.stats.failed_batches == 1
        assert served.stats.rows_applied == 30  # the three valid batches
        assert served.session.rows_processed == 30
        assert served.stats.rows_pending == 10  # only the poison rows missing

    def test_partial_merged_failure_never_double_applies(self):
        """Windowed merged applies are per-pane, hence non-atomic: a group
        that fails mid-way is accounted, not retried (retrying would
        ingest the already-applied prefix twice)."""

        async def drive():
            registry = SketchRegistry(coalesce=8)
            served = registry.create(
                "w", "unbiased_space_saving", size=32,
                window="tumbling:1m", seed=0,
            )
            # Coalesced group: pane-0 rows apply, then the pane-1 slice
            # fails on an unconvertible weight.
            assert served.offer_batch(["a"], timestamps=[5.0])
            assert served.offer_batch(
                ["b", "c"], [1.0, None], timestamps=[8.0, 65.0]
            )
            await served.drain()
            return served

        served = asyncio.run(drive())
        applied = served.session.rows_processed
        # However the failure fell, no row may be counted twice.
        assert served.stats.rows_applied == applied
        estimates = served.session.estimator.estimates(last=2)
        assert all(count == 1.0 for count in estimates.values())
        assert served.stats.failed_batches > 0
        assert "not retried" in served.stats.last_error or applied == 0

    def test_plain_and_timestamped_batches_do_not_merge(self):
        """Windowed sessions accept both; the writer must not concatenate them."""

        async def drive():
            registry = SketchRegistry(coalesce=8)
            served = registry.create(
                "w", "unbiased_space_saving", size=32,
                window="tumbling:10m", seed=0,
            )
            assert served.offer_batch(["a"], timestamps=[5.0])
            assert served.offer_batch(["b"])            # routes to active window
            assert served.offer_batch(["c"], timestamps=[8.0])
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.stats.failed_batches == 0
        assert served.stats.rows_applied == 3
        assert sorted(served.estimates()) == ["a", "b", "c"]

    def test_nonblocking_client_returns_row_count(self):
        async def drive():
            server = SketchServer(queue_maxsize=8)
            client = server.client
            await client.create("s", "unbiased_space_saving", size=16, seed=0)
            sent = await client.update_batch("s", [1, 2, 3], block=False)
            sent_again = await client.update_batch(
                "s", iter([4, 5]), block=False
            )
            await server.stop()
            return sent, sent_again

        assert asyncio.run(drive()) == (3, 2)

    def test_final_checkpoint_happens_after_sessions_close(self, tmp_path):
        """Nothing can be accepted after the state the checkpoint captured."""

        async def drive():
            server = SketchServer(checkpoint_dir=tmp_path)
            client = server.client
            await client.create("s", "unbiased_space_saving", size=16, seed=0)
            served = server.registry.get("s")
            assert served.offer_batch([1, 2, 3])  # never flushed explicitly
            await server.stop()
            # The session closed before the final checkpoint was written...
            with pytest.raises(ServerClosedError):
                served.offer_batch([4])
            return served

        served = asyncio.run(drive())
        # ...so the checkpoint holds exactly the drained state.
        restored = SketchServer.restore(tmp_path)
        assert restored.registry.get("s").estimates() == served.estimates()
        assert restored.registry.get("s").stats.rows_applied == 3

    def test_windowed_served_session(self):
        async def drive():
            registry = SketchRegistry(coalesce=1)
            served = registry.create(
                "w", "unbiased_space_saving", size=32,
                window="tumbling:60s", seed=0,
            )
            await served.put_batch(["x", "y"], timestamps=[10.0, 20.0])
            await served.put_batch(["z"], timestamps=[70.0])  # rotates the pane
            await served.drain()
            return served

        served = asyncio.run(drive())
        assert served.describe()["window"] == "tumbling:1m"  # normalized form
        assert sorted(served.estimates()) == ["z"]  # active window only

    def test_describe_merges_session_and_serving_state(self):
        registry = SketchRegistry()
        served = registry.create(
            "clicks", "unbiased_space_saving", size=16, tenant="ads",
            seed=0, ttl=30.0,
        )
        info = served.describe()
        assert info["tenant"] == "ads"
        assert info["name"] == "clicks"
        assert info["spec"] == "unbiased_space_saving"
        assert info["backend"] == "inline"
        assert info["ttl"] == 30.0
        assert info["serving"]["rows_applied"] == 0
        assert info["queue_maxsize"] == 64
        # The server publishes describe() on the wire: must stay JSON-safe.
        protocol.encode_line(info)

    def test_misra_gries_spec_served(self):
        """Serving is spec-agnostic: any facade-buildable spec works."""

        async def drive():
            registry = SketchRegistry()
            served = registry.create("mg", "misra_gries", size=8)
            await served.put_batch(["a"] * 5 + ["b"] * 3 + ["c"])
            await served.drain()
            return served.estimates()

        estimates = asyncio.run(drive())
        assert estimates["a"] >= 4.0


# ----------------------------------------------------------------------
# Wire protocol codec
# ----------------------------------------------------------------------
class TestProtocolCodec:
    def test_item_roundtrip_preserves_types(self):
        for item in [7, 2.5, "ad", True, None, ("a", 1), (("x", 2), 3.5)]:
            encoded = protocol.encode_item(item)
            assert protocol.decode_item(encoded) == item

    def test_numpy_scalars_become_python(self):
        assert protocol.encode_item(np.int64(5)) == 5
        assert isinstance(protocol.encode_item(np.int64(5)), int)

    def test_unserializable_item_rejected(self):
        with pytest.raises(SerializationError):
            protocol.encode_item(object())

    def test_pairs_roundtrip_preserves_order(self):
        groups = {("a", 1): 3.0, "b": 1.5, 7: 2.0}
        assert protocol.decode_pairs(protocol.encode_pairs(groups)) == groups

    def test_line_roundtrip_and_malformed_line(self):
        message = {"id": 1, "op": "ping"}
        line = protocol.encode_line(message)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line) == message
        with pytest.raises(SerializationError):
            protocol.decode_line(b"not json\n")
        with pytest.raises(SerializationError):
            protocol.decode_line(b"[1, 2, 3]\n")

    def test_error_response_carries_type_and_message(self):
        response = protocol.error_response(3, SessionNotFoundError("no session"))
        assert response["ok"] is False
        assert response["error"]["type"] == "SessionNotFoundError"
        assert "no session" in response["error"]["message"]


# ----------------------------------------------------------------------
# Load generators
# ----------------------------------------------------------------------
class TestLoadGenerators:
    def test_deal_round_robin_partitions_everything(self):
        chunks = [[i] for i in range(10)]
        hands = deal_round_robin(chunks, 4)
        assert len(hands) == 4
        assert sorted(c[0] for hand in hands for c in hand) == list(range(10))
        # Per-producer order is preserved.
        assert hands[0] == [[0], [4], [8]]
        assert deal_round_robin(chunks, 20) == [[c] for c in chunks]
        with pytest.raises(ValueError):
            deal_round_robin(chunks, 0)

    def test_run_producers_applies_all_rows(self):
        async def drive():
            server = SketchServer(queue_maxsize=4)
            client = server.client
            await client.create("s", "unbiased_space_saving", size=64, seed=0)
            chunks = [list(range(start, start + 25)) for start in range(0, 200, 25)]
            report = await run_producers(client, "s", chunks, num_producers=4)
            total = await client.total("s")
            await server.stop()
            return report, total

        report, total = asyncio.run(drive())
        assert report.rows == 200
        assert report.num_producers == 4
        assert total.estimate == 200.0
        assert report.rows_per_sec > 0

    def test_latency_report_quantiles(self):
        report = LatencyReport(samples=[0.001 * (i + 1) for i in range(100)])
        assert report.count == 100
        assert report.quantile(0.0) == pytest.approx(0.001)
        assert report.quantile(0.5) == pytest.approx(0.051, abs=1e-3)
        assert report.quantile(1.0) == pytest.approx(0.100)
        empty = LatencyReport(samples=[])
        assert empty.as_dict()["p50_ms"] == 0.0

    def test_serve_stats_accounting(self):
        stats = ServeStats(rows_enqueued=10, rows_applied=4)
        assert stats.rows_pending == 6
        assert stats.as_dict()["rows_pending"] == 6
