"""Unit tests for the Stream-Summary data structure."""

from __future__ import annotations

import random

import pytest

from repro.core.stream_summary import StreamSummary
from repro.errors import InvalidParameterError, SketchStateError


class TestBasicOperations:
    def test_empty_summary_has_zero_length(self):
        assert len(StreamSummary()) == 0
        assert not StreamSummary()

    def test_insert_and_count(self):
        summary = StreamSummary()
        summary.insert("a", 3)
        assert summary.count("a") == 3
        assert "a" in summary
        assert len(summary) == 1

    def test_insert_with_default_zero_count(self):
        summary = StreamSummary()
        summary.insert("a")
        assert summary.count("a") == 0

    def test_get_returns_default_for_missing(self):
        summary = StreamSummary()
        assert summary.get("missing") == 0
        assert summary.get("missing", default=7) == 7

    def test_count_raises_for_missing_item(self):
        with pytest.raises(KeyError):
            StreamSummary().count("missing")

    def test_duplicate_insert_rejected(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            summary.insert("a", 2)

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            StreamSummary().insert("a", -1)

    def test_remove_returns_count_and_deletes(self):
        summary = StreamSummary()
        summary.insert("a", 5)
        assert summary.remove("a") == 5
        assert "a" not in summary
        assert len(summary) == 0


class TestMinTracking:
    def test_min_count_and_label(self):
        summary = StreamSummary()
        summary.insert("a", 5)
        summary.insert("b", 2)
        summary.insert("c", 9)
        assert summary.min_count() == 2
        assert summary.min_label() == "b"

    def test_max_count(self):
        summary = StreamSummary()
        summary.insert("a", 5)
        summary.insert("b", 2)
        assert summary.max_count() == 5

    def test_min_on_empty_raises(self):
        with pytest.raises(SketchStateError):
            StreamSummary().min_count()
        with pytest.raises(SketchStateError):
            StreamSummary().min_label()
        with pytest.raises(SketchStateError):
            StreamSummary().min_labels()

    def test_min_labels_returns_all_ties(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 1)
        summary.insert("c", 2)
        assert set(summary.min_labels()) == {"a", "b"}

    def test_random_tie_breaking_uses_rng(self):
        rng = random.Random(0)
        summary = StreamSummary(rng=rng)
        for label in "abcdefgh":
            summary.insert(label, 1)
        picks = {summary.min_label() for _ in range(50)}
        assert len(picks) > 1

    def test_min_updates_after_increment(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 2)
        summary.increment("a", 5)
        assert summary.min_label() == "b"
        assert summary.min_count() == 2


class TestIncrement:
    def test_unit_increment(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        assert summary.increment("a") == 2
        assert summary.count("a") == 2

    def test_increment_by_larger_step(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 3)
        assert summary.increment("a", 10) == 11
        assert summary.count("a") == 11
        summary.check_invariants()

    def test_increment_zero_is_noop(self):
        summary = StreamSummary()
        summary.insert("a", 4)
        assert summary.increment("a", 0) == 4

    def test_negative_increment_rejected(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            summary.increment("a", -1)

    def test_increment_merges_into_existing_bucket(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 2)
        summary.increment("a")
        # Both now share the count-2 bucket.
        assert summary.count("a") == summary.count("b") == 2
        summary.check_invariants()

    def test_increment_min_returns_label_and_count(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 5)
        label, count = summary.increment_min()
        assert label == "a"
        assert count == 2


class TestRelabel:
    def test_relabel_preserves_count(self):
        summary = StreamSummary()
        summary.insert("old", 7)
        summary.relabel("old", "new")
        assert "old" not in summary
        assert summary.count("new") == 7

    def test_relabel_to_existing_label_rejected(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 2)
        with pytest.raises(InvalidParameterError):
            summary.relabel("a", "b")

    def test_relabel_missing_raises(self):
        with pytest.raises(KeyError):
            StreamSummary().relabel("ghost", "new")


class TestIterationAndInvariants:
    def test_items_sorted_by_count(self):
        summary = StreamSummary()
        summary.insert("c", 3)
        summary.insert("a", 1)
        summary.insert("b", 2)
        counts = [count for _, count in summary.items()]
        assert counts == sorted(counts)

    def test_counts_snapshot(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 2)
        assert summary.counts() == {"a": 1, "b": 2}

    def test_invariants_hold_under_random_workload(self):
        rng = random.Random(7)
        summary = StreamSummary()
        live = []
        for step in range(500):
            action = rng.random()
            if action < 0.4 or not live:
                label = f"item{step}"
                summary.insert(label, rng.randrange(4))
                live.append(label)
            elif action < 0.8:
                summary.increment(rng.choice(live), rng.randrange(1, 5))
            elif action < 0.9 and len(live) > 1:
                victim = live.pop(rng.randrange(len(live)))
                summary.remove(victim)
            else:
                old = live.pop(rng.randrange(len(live)))
                new = f"re{step}"
                summary.relabel(old, new)
                live.append(new)
            summary.check_invariants()
        assert len(summary) == len(live)

    def test_unlink_head_and_tail_buckets(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        summary.insert("b", 5)
        summary.remove("a")
        assert summary.min_count() == 5
        summary.remove("b")
        assert len(summary) == 0
        summary.insert("c", 3)
        assert summary.min_count() == summary.max_count() == 3
