"""Unit tests for the §5.3 extensions: decay, adaptive sizing, signed updates."""

from __future__ import annotations

import math

import pytest

from repro.core.adaptive import AdaptiveUnbiasedSpaceSaving
from repro.core.decay import ForwardDecaySketch, exponential_decay, polynomial_decay
from repro.core.weighted import SignedUnbiasedSpaceSaving, weighted_stream_to_unit_rows
from repro.errors import InvalidParameterError


class TestDecayFunctions:
    def test_exponential_decay_monotone(self):
        g = exponential_decay(0.5)
        assert g(0.0) == 1.0
        assert g(2.0) > g(1.0) > g(0.0)

    def test_exponential_decay_rejects_negative_rate(self):
        with pytest.raises(InvalidParameterError):
            exponential_decay(-0.1)

    def test_polynomial_decay(self):
        g = polynomial_decay(2.0)
        assert g(3.0) == 9.0
        assert g(-1.0) == 0.0

    def test_polynomial_decay_rejects_negative_exponent(self):
        with pytest.raises(InvalidParameterError):
            polynomial_decay(-1.0)


class TestForwardDecaySketch:
    def test_recent_items_weighted_more(self):
        sketch = ForwardDecaySketch(capacity=8, decay=exponential_decay(0.2), seed=0)
        sketch.update("old", timestamp=0.0)
        sketch.update("new", timestamp=20.0)
        assert sketch.decayed_estimate("new", at_time=20.0) > sketch.decayed_estimate(
            "old", at_time=20.0
        )

    def test_equal_timestamps_equal_decayed_weight(self):
        sketch = ForwardDecaySketch(capacity=8, decay=exponential_decay(0.3), seed=0)
        sketch.update("a", timestamp=5.0)
        sketch.update("b", timestamp=5.0)
        assert sketch.decayed_estimate("a", at_time=5.0) == pytest.approx(
            sketch.decayed_estimate("b", at_time=5.0)
        )

    def test_decayed_weight_of_single_row_is_exponential(self):
        rate = 0.1
        sketch = ForwardDecaySketch(capacity=4, decay=exponential_decay(rate), seed=0)
        sketch.update("a", timestamp=3.0)
        estimate = sketch.decayed_estimate("a", at_time=10.0)
        assert estimate == pytest.approx(math.exp(-rate * 7.0))

    def test_timestamp_before_landmark_rejected(self):
        sketch = ForwardDecaySketch(
            capacity=4, decay=exponential_decay(0.1), landmark=10.0
        )
        with pytest.raises(InvalidParameterError):
            sketch.update("a", timestamp=5.0)

    def test_non_positive_weight_rejected(self):
        sketch = ForwardDecaySketch(capacity=4, decay=exponential_decay(0.1))
        with pytest.raises(InvalidParameterError):
            sketch.update("a", timestamp=1.0, weight=0.0)

    def test_decayed_subset_sum_and_top_k(self):
        sketch = ForwardDecaySketch(capacity=16, decay=exponential_decay(0.05), seed=1)
        for timestamp in range(20):
            sketch.update("steady", timestamp=float(timestamp))
        for timestamp in range(15, 20):
            sketch.update("rising", timestamp=float(timestamp))
        top = sketch.top_k(2)
        assert top[0][0] == "steady"
        total = sketch.decayed_subset_sum(lambda item: True)
        assert total > 0
        with_error = sketch.decayed_subset_sum_with_error(lambda item: True)
        assert with_error.estimate == pytest.approx(total)

    def test_extend_accepts_two_and_three_tuples(self):
        sketch = ForwardDecaySketch(capacity=4, decay=exponential_decay(0.1))
        sketch.extend([("a", 1.0), ("b", 2.0, 3.0)])
        assert sketch.underlying_sketch.rows_processed == 2

    def test_query_before_landmark_rejected(self):
        sketch = ForwardDecaySketch(
            capacity=4, decay=exponential_decay(0.1), landmark=5.0
        )
        sketch.update("a", timestamp=6.0)
        with pytest.raises(InvalidParameterError):
            sketch.decayed_estimate("a", at_time=1.0)


class TestAdaptiveUnbiasedSpaceSaving:
    def test_capacity_respected(self):
        sketch = AdaptiveUnbiasedSpaceSaving(capacity=6, seed=0)
        sketch.extend(range(200))
        assert len(sketch) <= 6

    def test_total_preserved(self):
        sketch = AdaptiveUnbiasedSpaceSaving(capacity=6, seed=1)
        sketch.extend(range(150))
        assert sum(sketch.estimates().values()) == pytest.approx(150.0)

    def test_manual_shrink_is_unbiased_in_expectation(self):
        import numpy as np

        totals = []
        for seed in range(200):
            sketch = AdaptiveUnbiasedSpaceSaving(capacity=20, seed=seed)
            sketch.extend(range(40))
            sketch.resize(5)
            totals.append(sum(sketch.estimates().values()))
        assert np.mean(totals) == pytest.approx(40.0, rel=0.1)

    def test_grow_keeps_existing_bins(self):
        sketch = AdaptiveUnbiasedSpaceSaving(capacity=3, seed=2)
        sketch.extend(["a", "b", "c"])
        sketch.resize(10)
        assert sketch.capacity == 10
        assert sketch.estimates() == {"a": 1.0, "b": 1.0, "c": 1.0}

    def test_auto_growth_triggered(self):
        sketch = AdaptiveUnbiasedSpaceSaving(
            capacity=2, max_capacity=16, growth_trigger=0.05, seed=3
        )
        sketch.extend(range(300))
        assert sketch.capacity > 2
        assert sketch.capacity <= 16
        assert sketch.resize_events > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveUnbiasedSpaceSaving(capacity=4, max_capacity=2)
        with pytest.raises(InvalidParameterError):
            AdaptiveUnbiasedSpaceSaving(capacity=4, growth_trigger=1.5)
        sketch = AdaptiveUnbiasedSpaceSaving(capacity=4)
        with pytest.raises(InvalidParameterError):
            sketch.update("a", 0)
        with pytest.raises(InvalidParameterError):
            sketch.resize(0)

    def test_subset_sum_with_error(self):
        sketch = AdaptiveUnbiasedSpaceSaving(capacity=5, seed=4)
        sketch.extend(range(100))
        result = sketch.subset_sum_with_error(lambda item: item < 50)
        assert result.variance > 0


class TestSignedUnbiasedSpaceSaving:
    def test_net_estimates(self):
        sketch = SignedUnbiasedSpaceSaving(capacity=8, seed=0)
        sketch.update("a", 5)
        sketch.update("a", -2)
        sketch.update("b", 3)
        assert sketch.estimate("a") == pytest.approx(3.0)
        assert sketch.estimate("b") == pytest.approx(3.0)
        assert sketch.net_weight == pytest.approx(6.0)

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            SignedUnbiasedSpaceSaving(capacity=4).update("a", 0)

    def test_extend_and_subset_sum(self):
        sketch = SignedUnbiasedSpaceSaving(capacity=8, seed=1)
        sketch.extend([("a", 2), ("b", 4), ("a", -1), ("c", -2)])
        assert sketch.subset_sum(lambda item: item in {"a", "b"}) == pytest.approx(5.0)
        result = sketch.subset_sum_with_error(lambda item: True)
        assert result.estimate == pytest.approx(3.0)
        assert result.variance >= 0.0

    def test_estimates_include_negative_only_items(self):
        sketch = SignedUnbiasedSpaceSaving(capacity=4, seed=2)
        sketch.update("gone", -3)
        assert sketch.estimates()["gone"] == pytest.approx(-3.0)

    def test_capacity_and_rows_processed(self):
        sketch = SignedUnbiasedSpaceSaving(capacity=4, seed=3)
        sketch.update("a", 1)
        sketch.update("b", -1)
        assert sketch.capacity == 4
        assert sketch.rows_processed == 2
        assert sketch.positive_sketch.rows_processed == 1
        assert sketch.negative_sketch.rows_processed == 1


class TestWeightedStreamExpansion:
    def test_expansion(self):
        rows = list(weighted_stream_to_unit_rows([("a", 3), ("b", 0), ("c", 2)]))
        assert rows == ["a", "a", "a", "c", "c"]

    def test_negative_or_fractional_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            list(weighted_stream_to_unit_rows([("a", -1)]))
        with pytest.raises(InvalidParameterError):
            list(weighted_stream_to_unit_rows([("a", 1.5)]))
