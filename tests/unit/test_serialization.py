"""Serialization round trips: the repro.io contract for every sketch.

Pinned guarantees:

1. Every serializable sketch round-trips through ``to_bytes``/``from_bytes``
   and ``to_dict``/``from_dict`` with bit-identical query results (point
   estimates, full retained state, heavy hitters, subset sums).
2. Seeded sketches *continue* their stream after a round trip exactly as
   the original would (the RNG state rides in the payload).
3. The envelope is versioned and defensive: newer schema versions, wrong
   payload types, corrupt frames and unserializable labels all raise
   ``SerializationError`` rather than misloading.
4. ``repro.io.load_bytes`` / ``load_dict`` dispatch a payload to the class
   that produced it without the caller naming the type.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.sharded import ShardedSketch
from repro.errors import SerializationError
from repro.frequent.count_sketch import CountSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.lossy_counting import LossyCountingSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.frequent.sticky_sampling import StickySamplingSketch
from repro.io import SCHEMA_VERSION, load_bytes, load_dict, registered_types
from repro.io.codec import decode_item, encode_item, pack_envelope, unpack_envelope
from repro.sampling.bottom_k import BottomKSketch
from repro.sampling.priority import PrioritySample, StreamingPrioritySampler
from repro.sampling.reservoir import ReservoirSampler

SEED = 20180618


def _ingest(sketch, rows):
    for row in rows:
        sketch.update(row)
    return sketch


def _probe_items(rows):
    return sorted(set(rows), key=repr)[:20] + ["__absent__"]


FREQUENT_FACTORIES = [
    pytest.param(lambda: UnbiasedSpaceSaving(32, seed=SEED), id="uss"),
    pytest.param(lambda: UnbiasedSpaceSaving(32, seed=SEED, store="heap"), id="uss-heap"),
    pytest.param(lambda: DeterministicSpaceSaving(32, seed=SEED), id="dss"),
    pytest.param(lambda: MisraGriesSketch(32, seed=SEED), id="misra-gries"),
    pytest.param(lambda: LossyCountingSketch(epsilon=0.01), id="lossy"),
    pytest.param(lambda: StickySamplingSketch(epsilon=0.02, seed=SEED), id="sticky"),
    pytest.param(lambda: BottomKSketch(32, seed=SEED), id="bottom-k"),
]


@pytest.mark.parametrize("factory", FREQUENT_FACTORIES)
class TestFrequentSketchRoundTrip:
    def test_bytes_round_trip_is_bit_identical(self, factory, batch_workload):
        original = _ingest(factory(), batch_workload)
        restored = type(original).from_bytes(original.to_bytes())
        assert restored.estimates() == original.estimates()
        assert restored.rows_processed == original.rows_processed
        assert restored.total_weight == original.total_weight
        for item in _probe_items(batch_workload):
            assert restored.estimate(item) == original.estimate(item)

    def test_dict_round_trip_is_bit_identical(self, factory, batch_workload):
        original = _ingest(factory(), batch_workload)
        payload = original.to_dict()
        # The dict form must actually be JSON-serializable end to end.
        payload = json.loads(json.dumps(payload))
        restored = type(original).from_dict(payload)
        assert restored.estimates() == original.estimates()

    def test_registry_dispatch(self, factory, batch_workload):
        original = _ingest(factory(), batch_workload)
        restored = load_bytes(original.to_bytes())
        assert type(restored) is type(original)
        assert restored.estimates() == original.estimates()
        from_dict = load_dict(original.to_dict())
        assert from_dict.estimates() == original.estimates()

    def test_continuation_matches_uninterrupted_run(self, factory, batch_workload):
        half = len(batch_workload) // 2
        uninterrupted = _ingest(factory(), batch_workload)
        first_half = _ingest(factory(), batch_workload[:half])
        resumed = type(first_half).from_bytes(first_half.to_bytes())
        _ingest(resumed, batch_workload[half:])
        assert resumed.estimates() == uninterrupted.estimates()
        assert resumed.rows_processed == uninterrupted.rows_processed


def test_heavy_hitter_sets_survive_round_trip(batch_workload):
    original = _ingest(UnbiasedSpaceSaving(32, seed=SEED), batch_workload)
    restored = UnbiasedSpaceSaving.from_bytes(original.to_bytes())
    assert restored.heavy_hitters(0.01) == original.heavy_hitters(0.01)
    assert restored.top_k(10) == original.top_k(10)
    predicate = lambda item: int(item) % 3 == 0  # noqa: E731
    assert restored.subset_sum(predicate) == original.subset_sum(predicate)
    with_error = original.subset_sum_with_error(predicate)
    restored_error = restored.subset_sum_with_error(predicate)
    assert restored_error.estimate == with_error.estimate
    assert restored_error.variance == with_error.variance


def test_numpy_scalar_labels_round_trip():
    # Rows fed one at a time off a numpy array leave np.int64 keys in the
    # sketch; serialization lowers them to Python scalars (equal and
    # equally hashable), so checkpointing such a sketch works.
    sketch = UnbiasedSpaceSaving(8, seed=1)
    for row in np.asarray([1, 2, 1, 3], dtype=np.int64):
        sketch.update(row)
    restored = UnbiasedSpaceSaving.from_bytes(sketch.to_bytes())
    assert restored.estimates() == sketch.estimates()
    assert restored.estimate(1) == 2.0


def test_parallel_executor_accepts_numpy_scalar_lists():
    from repro.distributed.parallel import ParallelSketchExecutor

    executor = ParallelSketchExecutor(8, 2, seed=0, num_workers=0)
    executor.update_batch([np.int64(1), np.int64(2), np.int64(1)])
    assert executor.estimate(1) == 2.0
    assert executor.rows_processed == 3


def test_tuple_labels_round_trip():
    sketch = UnbiasedSpaceSaving(8, seed=1)
    rows = [("user", 1), ("user", 2), ("user", 1), ("ad", ("x", 3))]
    for row in rows:
        sketch.update(row)
    restored = UnbiasedSpaceSaving.from_bytes(sketch.to_bytes())
    assert restored.estimates() == sketch.estimates()
    assert restored.estimate(("user", 1)) == 2.0


def test_countmin_round_trip(batch_workload):
    original = CountMinSketch(
        width=256, depth=4, seed=SEED, conservative=True, track_heavy_hitters=8
    )
    _ingest(original, batch_workload)
    restored = CountMinSketch.from_bytes(original.to_bytes())
    assert np.array_equal(restored._table, original._table)
    for item in _probe_items(batch_workload):
        assert restored.estimate(item) == original.estimate(item)
    assert restored.heavy_hitters(0.01) == original.heavy_hitters(0.01)
    # A restored sketch keeps ingesting (and keeps tracking heavy hitters).
    continued = _ingest(CountMinSketch.from_bytes(original.to_bytes()), batch_workload)
    doubled = CountMinSketch(
        width=256, depth=4, seed=SEED, conservative=True, track_heavy_hitters=8
    )
    _ingest(doubled, batch_workload + batch_workload)
    for item in _probe_items(batch_workload):
        assert continued.estimate(item) == doubled.estimate(item)


def test_count_sketch_round_trip(batch_workload):
    original = CountSketch(width=256, depth=5, seed=SEED)
    _ingest(original, batch_workload)
    restored = CountSketch.from_bytes(original.to_bytes())
    assert np.array_equal(restored._table, original._table)
    assert restored.second_moment() == original.second_moment()
    for item in _probe_items(batch_workload):
        assert restored.estimate(item) == original.estimate(item)


def test_priority_sample_round_trip():
    values = {f"item{index}": float(index + 1) for index in range(200)}
    original = PrioritySample(values, sample_size=25, rng=random.Random(SEED))
    restored = PrioritySample.from_bytes(original.to_bytes())
    assert restored.estimates() == original.estimates()
    assert restored.threshold == original.threshold
    assert restored.total_estimate() == original.total_estimate()
    predicate = lambda item: item.endswith("7")  # noqa: E731
    assert restored.subset_sum(predicate) == original.subset_sum(predicate)


def test_streaming_priority_sampler_round_trip_and_continuation():
    original = StreamingPrioritySampler(16, rng=random.Random(SEED))
    original.extend((f"item{index}", float(index % 17 + 1)) for index in range(300))
    restored = StreamingPrioritySampler.from_bytes(original.to_bytes())

    def snapshot(sampler):
        return sorted(
            (s.item, s.value, s.inclusion_probability) for s in sampler.result()
        )

    assert snapshot(restored) == snapshot(original)
    # Continuation consumes the RNG identically.
    for pair in [("late1", 40.0), ("late2", 2.0), ("late3", 11.0)]:
        original.offer(*pair)
        restored.offer(*pair)
    assert snapshot(restored) == snapshot(original)


def test_reservoir_sampler_round_trip_and_continuation():
    original = ReservoirSampler(12, seed=SEED)
    original.extend(f"row{index % 53}" for index in range(500))
    restored = ReservoirSampler.from_bytes(original.to_bytes())
    assert restored.sample() == original.sample()
    for index in range(200):
        original.offer(f"late{index}")
        restored.offer(f"late{index}")
    assert restored.sample() == original.sample()
    assert restored.rows_processed == original.rows_processed


def test_sharded_sketch_round_trip(batch_workload):
    original = ShardedSketch(capacity=24, num_shards=4, seed=SEED)
    original.update_batch(batch_workload)
    restored = ShardedSketch.from_bytes(original.to_bytes())
    assert restored.estimates() == original.estimates()
    assert restored.rows_processed == original.rows_processed
    assert restored.total_weight == original.total_weight
    assert restored.merged().estimates() == original.merged().estimates()
    # Continuation: both ensembles keep ingesting identically.
    original.update_batch(batch_workload[:1000])
    restored.update_batch(batch_workload[:1000])
    assert restored.estimates() == original.estimates()


# ----------------------------------------------------------------------
# Envelope validation
# ----------------------------------------------------------------------
def test_newer_schema_version_is_refused():
    sketch = _ingest(UnbiasedSpaceSaving(8, seed=1), ["a", "b", "a"])
    payload = sketch.to_dict()
    payload["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(SerializationError, match="newer"):
        UnbiasedSpaceSaving.from_dict(payload)


def test_wrong_type_is_refused():
    sketch = _ingest(UnbiasedSpaceSaving(8, seed=1), ["a", "b", "a"])
    with pytest.raises(SerializationError, match="DeterministicSpaceSaving"):
        DeterministicSpaceSaving.from_bytes(sketch.to_bytes())
    with pytest.raises(SerializationError):
        DeterministicSpaceSaving.from_dict(sketch.to_dict())


def test_corrupt_frames_are_refused():
    sketch = _ingest(UnbiasedSpaceSaving(8, seed=1), ["a", "b", "a"])
    data = sketch.to_bytes()
    with pytest.raises(SerializationError, match="magic"):
        UnbiasedSpaceSaving.from_bytes(b"XXXX" + data[4:])
    with pytest.raises(SerializationError, match="truncated|incomplete"):
        UnbiasedSpaceSaving.from_bytes(data[: len(data) - 3])
    with pytest.raises(SerializationError):
        UnbiasedSpaceSaving.from_bytes(b"RP")
    with pytest.raises(SerializationError):
        load_bytes("not bytes at all")


def test_malformed_array_descriptors_are_refused():
    sketch = _ingest(UnbiasedSpaceSaving(8, seed=1), ["a", "b", "a"])
    payload = sketch.to_dict()
    payload["arrays"]["counts"]["dtype"] = "no-such-dtype"
    with pytest.raises(SerializationError, match="bad array"):
        UnbiasedSpaceSaving.from_dict(payload)
    payload = sketch.to_dict()
    payload["arrays"]["counts"]["shape"] = [2, 7]
    with pytest.raises(SerializationError, match="bad array"):
        UnbiasedSpaceSaving.from_dict(payload)
    # Binary path: corrupt the shape recorded in the JSON header.
    data = sketch.to_bytes()
    corrupted = data.replace(b'"shape":[', b'"shape":[9,', 1)
    with pytest.raises(SerializationError):
        UnbiasedSpaceSaving.from_bytes(corrupted)


def test_negative_array_size_is_refused():
    sketch = _ingest(UnbiasedSpaceSaving(8, seed=1), ["a", "b", "a"])
    data = sketch.to_bytes()
    # Same-length tampering keeps the header frame intact: "nbytes":24 ->
    # "nbytes":-4 would change length, so flip the digits to a negative of
    # equal width.
    import re

    match = re.search(rb'"nbytes":(\d+)', data)
    digits = match.group(1)
    replacement = b'"nbytes":-' + b"1" * (len(digits) - 1)
    corrupted = data[: match.start()] + replacement + data[match.end() :]
    with pytest.raises(SerializationError, match="negative size"):
        UnbiasedSpaceSaving.from_bytes(corrupted)


def test_unknown_type_dispatch_is_refused():
    frame = pack_envelope("NoSuchSketch", {"x": 1}, {})
    with pytest.raises(SerializationError, match="unknown sketch type"):
        load_bytes(frame)


def test_unserializable_labels_are_refused():
    sketch = UnbiasedSpaceSaving(4, seed=0)
    sketch.update(frozenset({"a"}))
    with pytest.raises(SerializationError, match="not serializable"):
        sketch.to_bytes()


def test_item_codec_round_trips_composite_labels():
    labels = ["plain", 7, 3.5, True, None, ("a", 1), ("nested", ("x", 2.0), None)]
    for label in labels:
        encoded = json.loads(json.dumps(encode_item(label)))
        assert decode_item(encoded) == label
        assert type(decode_item(encoded)) is type(label)


def test_envelope_preserves_array_layout():
    table = np.arange(12, dtype=np.float64).reshape(3, 4)
    frame = pack_envelope("CountSketch", {"k": 1}, {"table": table, "empty": np.asarray([])})
    type_name, version, meta, arrays = unpack_envelope(frame)
    assert type_name == "CountSketch" and version == SCHEMA_VERSION
    assert meta == {"k": 1}
    assert np.array_equal(arrays["table"], table)
    assert arrays["table"].flags.writeable
    assert arrays["empty"].size == 0


def test_every_registered_type_resolves():
    from repro.io import resolve_sketch_type

    for type_name in registered_types():
        cls = resolve_sketch_type(type_name)
        assert cls.__name__ == type_name
        assert hasattr(cls, "from_bytes") and hasattr(cls, "to_bytes")
