"""Unit tests for the Sample-and-Hold family."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.samplehold.adaptive import AdaptiveSampleAndHold
from repro.samplehold.counting_samples import CountingSampleSketch
from repro.samplehold.step import StepSampleAndHold


class TestCountingSamples:
    def test_rate_one_is_exact(self):
        rows = ["a"] * 5 + ["b"] * 2
        sketch = CountingSampleSketch(sampling_rate=1.0, seed=0)
        sketch.extend(rows)
        truth = Counter(rows)
        for item in truth:
            assert sketch.estimate(item) == truth[item]

    def test_rate_validation(self):
        with pytest.raises(InvalidParameterError):
            CountingSampleSketch(sampling_rate=0.0)
        with pytest.raises(InvalidParameterError):
            CountingSampleSketch(sampling_rate=1.5)

    def test_unit_weight_only(self):
        with pytest.raises(UnsupportedUpdateError):
            CountingSampleSketch(sampling_rate=0.5).update("a", 2)

    def test_estimates_unbiased_over_seeds(self):
        rows = ["hot"] * 40 + [f"c{i}" for i in range(20)]
        estimates = []
        for seed in range(400):
            sketch = CountingSampleSketch(sampling_rate=0.3, seed=seed)
            sketch.extend(rows)
            estimates.append(sketch.estimate("hot"))
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - 40.0) <= 4 * standard_error + 0.5

    def test_subset_sum_with_error(self):
        sketch = CountingSampleSketch(sampling_rate=0.5, seed=1)
        sketch.extend(["a"] * 10 + ["b"] * 5)
        result = sketch.subset_sum_with_error(lambda item: True)
        assert result.estimate > 0
        assert result.variance >= 0

    def test_raw_counts_exposed(self):
        sketch = CountingSampleSketch(sampling_rate=1.0, seed=2)
        sketch.extend(["a", "a", "b"])
        assert sketch.raw_counts() == {"a": 2, "b": 1}


class TestAdaptiveSampleAndHold:
    def test_capacity_bounded(self):
        sketch = AdaptiveSampleAndHold(capacity=12, seed=0)
        sketch.extend(range(500))
        assert len(sketch) <= 12
        assert sketch.sampling_rate < 1.0
        assert sketch.rate_changes > 0

    def test_rate_decrease_validation(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveSampleAndHold(capacity=4, rate_decrease=1.0)
        with pytest.raises(InvalidParameterError):
            AdaptiveSampleAndHold(capacity=4, rate_decrease=0.0)

    def test_unit_weight_only(self):
        with pytest.raises(UnsupportedUpdateError):
            AdaptiveSampleAndHold(capacity=4).update("a", 2)

    def test_exact_while_under_capacity(self):
        sketch = AdaptiveSampleAndHold(capacity=10, seed=1)
        sketch.extend(["a"] * 4 + ["b"] * 2)
        assert sketch.estimate("a") == 4.0
        assert sketch.estimate("b") == 2.0

    def test_frequent_item_estimate_roughly_unbiased(self):
        rows = ["hot"] * 60 + [f"c{i}" for i in range(60)]
        estimates = []
        for seed in range(200):
            rng = np.random.default_rng(seed)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            sketch = AdaptiveSampleAndHold(capacity=20, seed=seed)
            sketch.extend(shuffled)
            estimates.append(sketch.estimate("hot"))
        # The adjustment is only approximately unbiased for items that churn;
        # the frequent item should be recovered within a modest tolerance.
        assert np.mean(estimates) == pytest.approx(60.0, rel=0.2)

    def test_noisier_than_unbiased_space_saving(self):
        """§5.4: sample-and-hold adds more noise per reduction than the sketch."""
        from repro.core.unbiased_space_saving import UnbiasedSpaceSaving

        rows = []
        for index in range(80):
            rows.extend([f"i{index}"] * ((index % 4) + 1))
        subset = {f"i{index}" for index in range(0, 80, 5)}
        truth = sum((index % 4) + 1 for index in range(0, 80, 5))
        uss_errors = []
        ash_errors = []
        for seed in range(150):
            rng = np.random.default_rng(seed)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            uss = UnbiasedSpaceSaving(capacity=25, seed=seed)
            uss.extend(shuffled)
            ash = AdaptiveSampleAndHold(capacity=25, seed=seed)
            ash.extend(shuffled)
            predicate = lambda item: item in subset  # noqa: E731
            uss_errors.append((uss.subset_sum(predicate) - truth) ** 2)
            ash_errors.append((ash.subset_sum(predicate) - truth) ** 2)
        assert np.mean(uss_errors) <= np.mean(ash_errors) * 1.5

    def test_subset_sum_with_error(self):
        sketch = AdaptiveSampleAndHold(capacity=8, seed=3)
        sketch.extend(range(200))
        result = sketch.subset_sum_with_error(lambda item: item < 100)
        assert result.variance >= 0


class TestStepSampleAndHold:
    def test_capacity_bounded_and_steps_recorded(self):
        sketch = StepSampleAndHold(capacity=10, seed=0)
        sketch.extend(range(400))
        assert len(sketch) <= 10
        assert sketch.current_step > 0
        assert len(sketch.step_rates) == sketch.current_step + 1

    def test_rate_decrease_validation(self):
        with pytest.raises(InvalidParameterError):
            StepSampleAndHold(capacity=4, rate_decrease=2.0)

    def test_unit_weight_only(self):
        with pytest.raises(UnsupportedUpdateError):
            StepSampleAndHold(capacity=4).update("a", 3)

    def test_exact_while_under_capacity(self):
        sketch = StepSampleAndHold(capacity=10, seed=1)
        sketch.extend(["a"] * 3 + ["b"])
        assert sketch.estimate("a") == 3.0
        assert sketch.per_step_counts("a") == {0: 3}

    def test_storage_cells_counts_all_steps(self):
        sketch = StepSampleAndHold(capacity=6, seed=2)
        sketch.extend([f"i{k % 12}" for k in range(300)])
        assert sketch.storage_cells() >= len(sketch)

    def test_frequent_item_estimate_close(self):
        rows = ["hot"] * 100 + [f"c{i}" for i in range(60)]
        estimates = []
        for seed in range(100):
            rng = np.random.default_rng(seed)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            sketch = StepSampleAndHold(capacity=30, seed=seed)
            sketch.extend(shuffled)
            estimates.append(sketch.estimate("hot"))
        # The implementation documents a simplified estimator: entry-coin
        # re-tosses lose pre-re-entry mass, so the recovered count is biased
        # low when the sketch churns.  It must still land in the right
        # ballpark for a clearly frequent item.
        assert np.mean(estimates) == pytest.approx(100.0, rel=0.45)

    def test_subset_sum_with_error(self):
        sketch = StepSampleAndHold(capacity=8, seed=3)
        sketch.extend(range(120))
        result = sketch.subset_sum_with_error(lambda item: True)
        assert result.estimate >= 0
        assert result.variance >= 0
