"""Unit tests for adaptive accuracy tiering (:mod:`repro.serve.tiering`).

Covers the error-budget capacity math, the §5.5 demotion of inline and
sharded sessions, the spill/rehydrate lifecycle through the registry
(eviction becomes demotion; a spilled key answers transparently on next
access), and the interaction corners: drop-while-spilled, duplicate
create on a spilled key, rehydration blocked by a tenant quota, and
rehydrate-under-backpressure.
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.errors import (
    InvalidParameterError,
    QuotaExceededError,
    SessionNotFoundError,
)
from repro.serve import (
    AccuracyTiering,
    ErrorBudget,
    QuotaManager,
    SketchRegistry,
    TenantQuota,
    capacity_for_rrmse,
)
from repro.serve.tiering import demote_session


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _fill(session, rows: int = 3000, distinct: int = 40) -> None:
    session.update_batch([f"item{i % distinct}" for i in range(rows)])


# ----------------------------------------------------------------------
# Error-budget math
# ----------------------------------------------------------------------
class TestErrorBudget:
    def test_capacity_inverts_the_rrmse_bound(self):
        assert capacity_for_rrmse(0.01) == 100
        assert capacity_for_rrmse(0.1) == 10
        # C_S items in the subset loosen the bound by sqrt(C_S).
        assert capacity_for_rrmse(0.01, subset_items=4) == 200

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            capacity_for_rrmse(0.0)
        with pytest.raises(InvalidParameterError):
            capacity_for_rrmse(0.01, subset_items=0)

    def test_budget_applies_floor(self):
        assert ErrorBudget(target_rrmse=0.5, min_capacity=32).demoted_capacity() == 32
        assert ErrorBudget(target_rrmse=0.01, min_capacity=8).demoted_capacity() == 100

    def test_budget_validation(self):
        with pytest.raises(InvalidParameterError):
            ErrorBudget(target_rrmse=-0.1)
        with pytest.raises(InvalidParameterError):
            ErrorBudget(min_capacity=0)


# ----------------------------------------------------------------------
# Demotion (§5.5 reduction)
# ----------------------------------------------------------------------
class TestDemoteSession:
    def test_inline_uss_demotes_and_preserves_total(self):
        session = repro.build("unbiased_space_saving", size=512, seed=7)
        _fill(session, rows=5000, distinct=300)
        demoted, capacity = demote_session(session, 64, seed=1)
        assert capacity == 64
        assert demoted is not session
        assert len(demoted.estimates()) <= 64
        # Totals are exact under USS reduction (every row's weight lands
        # in exactly one counter, before and after).
        assert demoted.total().estimate == session.total().estimate

    def test_small_session_passes_through(self):
        session = repro.build("unbiased_space_saving", size=32, seed=0)
        _fill(session, rows=100, distinct=10)
        demoted, capacity = demote_session(session, 64, seed=1)
        assert capacity is None
        assert demoted is session

    def test_sharded_session_demotes_through_merged(self):
        session = repro.build(
            "unbiased_space_saving", size=128, seed=3, backend="sharded",
            num_shards=4,
        )
        _fill(session, rows=4000, distinct=300)
        demoted, capacity = demote_session(session, 50, seed=1)
        assert capacity == 50
        assert demoted.backend == "inline"
        assert len(demoted.estimates()) <= 50
        assert demoted.total().estimate == pytest.approx(4000.0)

    def test_windowed_session_spills_at_full_fidelity(self):
        session = repro.build(
            "unbiased_space_saving", size=256, seed=0, window="tumbling:1m"
        )
        session.update_batch(["a", "b"], timestamps=[1.0, 2.0])
        demoted, capacity = demote_session(session, 8, seed=1)
        assert capacity is None
        assert demoted is session


# ----------------------------------------------------------------------
# Spill / rehydrate through the registry
# ----------------------------------------------------------------------
class TestRegistryTiering:
    def _registry(self, tmp_path, **kwargs):
        tiering = AccuracyTiering(
            tmp_path / "tiers",
            default_budget=ErrorBudget(target_rrmse=0.02, min_capacity=16),
        )
        clock = kwargs.pop("clock", FakeClock())
        return (
            SketchRegistry(tiering=tiering, clock=clock, **kwargs),
            tiering,
            clock,
        )

    def test_ttl_eviction_spills_and_get_rehydrates(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path)

        async def drive():
            served = registry.create(
                "clicks", "unbiased_space_saving", size=400, seed=1, ttl=10.0
            )
            await served.put_batch([f"item{i % 30}" for i in range(2000)])
            await served.drain()
            total_before = served.total().estimate
            clock.advance(11.0)
            assert registry.sweep() == [("default", "clicks")]
            assert len(registry) == 0
            assert tiering.holds(("default", "clicks"))
            assert tiering.stats()["demotions"] == 1
            # Transparent rehydration on the next get().
            revived = registry.get("clicks")
            assert revived.tier == "rehydrated"
            assert revived.demoted_capacity == 50  # ceil(1/0.02)
            assert revived.total().estimate == total_before
            assert revived.stats.rows_applied == 2000
            assert not tiering.holds(("default", "clicks"))
            assert tiering.stats()["rehydrations"] == 1
            # The rehydrated session keeps ingesting and keeps its TTL.
            await revived.put_batch(["item1"] * 10)
            await revived.drain()
            assert revived.total().estimate == total_before + 10
            assert revived.ttl == 10.0

        asyncio.run(drive())

    def test_capacity_eviction_spills_lru(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path, max_sessions=2)

        async def drive():
            first = registry.create("a", "unbiased_space_saving", size=64, seed=0)
            await first.put_batch(["x"] * 100)
            await first.drain()
            registry.create("b", "unbiased_space_saving", size=64, seed=1)
            registry.create("c", "unbiased_space_saving", size=64, seed=2)
            assert len(registry) == 2
            assert tiering.holds(("default", "a"))
            assert registry.get("a").total().estimate == 100.0

        asyncio.run(drive())

    def test_unserializable_session_falls_back_to_plain_eviction(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path)

        class Opaque:
            def update(self, item, weight=1.0):
                pass

        from repro.api.session import StreamSession

        registry.adopt("opaque", StreamSession(Opaque()), ttl=5.0)
        clock.advance(6.0)
        registry.sweep()
        assert not tiering.holds(("default", "opaque"))
        with pytest.raises(SessionNotFoundError):
            registry.get("opaque")

    def test_drop_discards_spilled_state(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path)
        registry.create("clicks", "unbiased_space_saving", size=64, seed=0, ttl=5.0)
        clock.advance(6.0)
        registry.sweep()
        assert tiering.holds(("default", "clicks"))
        registry.drop("clicks")
        assert not tiering.holds(("default", "clicks"))
        with pytest.raises(SessionNotFoundError):
            registry.get("clicks")
        # The spill file is gone too.
        assert list((tmp_path / "tiers").glob("*.tier")) == []

    def test_create_on_spilled_key_is_a_duplicate(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path)
        registry.create("clicks", "unbiased_space_saving", size=64, seed=0, ttl=5.0)
        clock.advance(6.0)
        registry.sweep()
        with pytest.raises(InvalidParameterError):
            registry.create("clicks", "unbiased_space_saving", size=64, seed=0)
        # ...and the spilled state survived the rejected create.
        assert registry.get("clicks").tier == "rehydrated"

    def test_tenants_are_isolated_in_the_spill_index(self, tmp_path):
        registry, tiering, clock = self._registry(tmp_path)
        registry.create(
            "clicks", "unbiased_space_saving", size=64, seed=0,
            tenant="a", ttl=5.0,
        )
        clock.advance(6.0)
        registry.sweep()
        assert tiering.holds(("a", "clicks"))
        with pytest.raises(SessionNotFoundError):
            registry.get("clicks", tenant="b")
        assert registry.get("clicks", tenant="a").tier == "rehydrated"

    def test_rehydration_blocked_by_quota_keeps_spill(self, tmp_path):
        clock = FakeClock()
        quota = QuotaManager(
            default=TenantQuota(max_sessions=1), clock=clock
        )
        tiering = AccuracyTiering(tmp_path / "tiers")
        registry = SketchRegistry(tiering=tiering, quota=quota, clock=clock)
        registry.create("old", "unbiased_space_saving", size=64, seed=0, ttl=5.0)
        clock.advance(6.0)
        registry.sweep()  # spills "old", releasing its quota slot
        registry.create("busy", "unbiased_space_saving", size=64, seed=1)
        # The tenant is at max_sessions again: rehydration must refuse —
        # and must NOT consume the spilled state doing so.
        with pytest.raises(QuotaExceededError):
            registry.get("old")
        assert tiering.holds(("default", "old"))
        registry.drop("busy")
        assert registry.get("old").tier == "rehydrated"

    def test_rehydrate_under_backpressure(self, tmp_path):
        # A spilled session is rehydrated by an ingest access while the
        # tenant's rate quota is exhausted and other sessions' queues are
        # saturated: rehydration itself must not deadlock, and the queued
        # rows must land after the writer resumes.
        clock = FakeClock()
        quota = QuotaManager(
            default=TenantQuota(max_rows_per_sec=1000.0), clock=clock
        )
        tiering = AccuracyTiering(tmp_path / "tiers")
        registry = SketchRegistry(
            tiering=tiering, quota=quota, clock=clock, queue_maxsize=2
        )

        async def drive():
            served = registry.create(
                "cold", "unbiased_space_saving", size=64, seed=0, ttl=5.0
            )
            await served.put_batch(["x"] * 500)
            await served.drain()
            clock.advance(6.0)
            registry.sweep()
            assert tiering.holds(("default", "cold"))
            # Exhaust the tenant's rate budget on another session.
            hot = registry.create("hot", "unbiased_space_saving", size=64, seed=1)
            assert hot.offer_batch(["y"] * 1000)
            with pytest.raises(QuotaExceededError):
                hot.offer_batch(["y"])
            # Rehydration under rate pressure: the non-blocking path still
            # refuses rows (rate quota is tenant-wide) but the session is
            # back and queryable...
            revived = registry.get("cold")
            assert revived.tier == "rehydrated"
            assert revived.total().estimate == 500.0
            with pytest.raises(QuotaExceededError):
                revived.offer_batch(["z"] * 10)
            # ...and the blocking path pays the debt and lands the rows.
            clock.advance(1.0)  # refill the injected-clock bucket
            await revived.put_batch(["z"] * 10)
            await revived.drain()
            assert revived.total().estimate == 510.0

        asyncio.run(drive())

    def test_spill_failure_degrades_to_plain_eviction(self, tmp_path):
        tier_dir = tmp_path / "tiers"
        tiering = AccuracyTiering(tier_dir)
        clock = FakeClock()
        registry = SketchRegistry(tiering=tiering, clock=clock)
        registry.create("clicks", "unbiased_space_saving", size=64, seed=0, ttl=5.0)
        # Make the tier directory impossible to create.
        tier_dir.write_text("not a directory")
        clock.advance(6.0)
        registry.sweep()
        assert not tiering.holds(("default", "clicks"))
        assert tiering.stats()["last_error"] is not None
        with pytest.raises(SessionNotFoundError):
            registry.get("clicks")
