"""Unit tests for the BinStore implementations."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.base import HeapBinStore, StreamSummaryBinStore
from repro.core.columnar import ColumnarCounterStore, resolve_kernel_name
from repro.errors import (
    EmptySketchError,
    InvalidParameterError,
    UnsupportedUpdateError,
)

STORES = [StreamSummaryBinStore, HeapBinStore]


@pytest.mark.parametrize("store_cls", STORES)
class TestCommonBehaviour:
    def test_insert_get_len_contains(self, store_cls):
        store = store_cls()
        store.insert("a", 2)
        store.insert("b", 5)
        assert len(store) == 2
        assert "a" in store and "c" not in store
        assert store.get("a") == 2.0
        assert store.get("c", 9.0) == 9.0

    def test_duplicate_insert_rejected(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            store.insert("a", 1)

    def test_increment_and_min_tracking(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        store.insert("b", 4)
        assert store.min_label() == "a"
        assert store.min_count() == 1.0
        store.increment("a", 10)
        assert store.min_label() == "b"
        assert store.min_count() == 4.0

    def test_remove_returns_count(self, store_cls):
        store = store_cls()
        store.insert("a", 3)
        assert store.remove("a") == 3.0
        assert len(store) == 0

    def test_relabel_keeps_count(self, store_cls):
        store = store_cls()
        store.insert("old", 6)
        store.relabel("old", "new")
        assert store.get("new") == 6.0
        assert "old" not in store

    def test_counts_snapshot(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        store.insert("b", 2)
        assert store.counts() == {"a": 1.0, "b": 2.0}

    def test_random_tie_breaking(self, store_cls):
        store = store_cls(rng=random.Random(3))
        for label in "abcdef":
            store.insert(label, 2)
        picks = {store.min_label() for _ in range(40)}
        assert picks <= set("abcdef")
        assert len(picks) > 1


class TestStreamSummaryStoreSpecifics:
    def test_rejects_fractional_counts(self):
        store = StreamSummaryBinStore()
        with pytest.raises(UnsupportedUpdateError):
            store.insert("a", 1.5)
        store.insert("b", 1)
        with pytest.raises(UnsupportedUpdateError):
            store.increment("b", 0.5)

    def test_invariant_check_passes(self):
        store = StreamSummaryBinStore()
        for index in range(20):
            store.insert(index, index % 5)
        store.check_invariants()


class TestHeapStoreSpecifics:
    def test_supports_fractional_counts(self):
        store = HeapBinStore()
        store.insert("a", 0.25)
        store.increment("a", 0.75)
        assert store.get("a") == pytest.approx(1.0)

    def test_min_on_empty_raises(self):
        with pytest.raises(EmptySketchError):
            HeapBinStore().min_count()

    def test_negative_insert_and_increment_rejected(self):
        store = HeapBinStore()
        with pytest.raises(InvalidParameterError):
            store.insert("a", -1.0)
        store.insert("b", 1.0)
        with pytest.raises(InvalidParameterError):
            store.increment("b", -0.5)

    def test_min_tracking_with_many_lazy_updates(self):
        rng = random.Random(11)
        store = HeapBinStore()
        reference = {}
        for index in range(200):
            label = f"item{index % 40}"
            if label in reference:
                delta = rng.random()
                store.increment(label, delta)
                reference[label] += delta
            else:
                value = rng.random() * 5
                store.insert(label, value)
                reference[label] = value
            expected_min = min(reference.values())
            assert store.min_count() == pytest.approx(expected_min)
            assert reference[store.min_label()] == pytest.approx(expected_min)


def make_columnar(capacity=8, *, seed=0, **kwargs) -> ColumnarCounterStore:
    generator = np.random.Generator(np.random.PCG64(seed))
    return ColumnarCounterStore(capacity, generator=generator, **kwargs)


class TestColumnarStoreSpecifics:
    """The struct-of-arrays store behind the default Space Saving path.

    Tie-breaking differs from the scalar stores by design: the minimum
    is (count, priority, slot)-lexicographic with priorities redrawn on
    every count change, rather than an rng pick at query time — so
    repeated min_label() calls are stable between updates, and the
    common random-tie-breaking test above does not apply.
    """

    def test_insert_get_len_contains(self):
        store = make_columnar()
        store.insert("a", 2)
        store.insert("b", 5)
        assert len(store) == 2
        assert "a" in store and "c" not in store
        assert store.get("a") == 2.0
        assert store.get("c", 9.0) == 9.0
        assert dict(store.items()) == {"a": 2.0, "b": 5.0}

    def test_duplicate_insert_and_bad_counts_rejected(self):
        store = make_columnar()
        store.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            store.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            store.insert("b", -1.0)
        with pytest.raises(InvalidParameterError):
            store.increment("a", -0.5)

    def test_capacity_is_enforced(self):
        store = make_columnar(capacity=2)
        store.insert("a", 1)
        store.insert("b", 1)
        with pytest.raises(InvalidParameterError):
            store.insert("c", 1)

    def test_increment_and_min_tracking(self):
        store = make_columnar()
        store.insert("a", 1)
        store.insert("b", 4)
        assert store.min_label() == "a"
        assert store.min_count() == 1.0
        store.increment("a", 10)
        assert store.min_label() == "b"
        assert store.min_count() == 4.0

    def test_min_on_empty_raises(self):
        with pytest.raises(EmptySketchError):
            make_columnar().min_count()

    def test_remove_recycles_the_slot(self):
        store = make_columnar(capacity=2)
        store.insert("a", 3)
        store.insert("b", 7)
        assert store.remove("a") == 3.0
        assert len(store) == 1 and "a" not in store
        # The freed slot is available again despite the store being
        # physically full before the removal.
        store.insert("c", 1)
        assert dict(store.items()) == {"b": 7.0, "c": 1.0}

    def test_relabel_keeps_count(self):
        store = make_columnar()
        store.insert("old", 6)
        store.relabel("old", "new")
        assert store.get("new") == 6.0
        assert "old" not in store
        with pytest.raises(InvalidParameterError):
            store.relabel("new", "new")

    def test_priorities_refresh_on_count_change(self):
        store = make_columnar()
        store.insert("a", 1)
        (_, _, before, _), = store.state_rows()
        store.increment("a", 1)
        (_, _, after, _), = store.state_rows()
        assert before != after

    def test_min_tie_breaks_by_priority_not_insertion_order(self):
        # Across seeds, ties at the same count must not always resolve
        # to the first-inserted label.
        picks = set()
        for seed in range(12):
            store = make_columnar(seed=seed)
            for label in "abcdef":
                store.insert(label, 2)
            picks.add(store.min_label())
        assert picks <= set("abcdef")
        assert len(picks) > 1

    def test_error_tracking_is_optional(self):
        untracked = make_columnar()
        untracked.insert("a", 1)
        assert untracked.acquisition_error("a") == 0.0
        tracked = make_columnar(track_errors=True)
        tracked.restore_bin("a", 5.0, 0.5, error=2.0)
        assert tracked.acquisition_error("a") == 2.0

    def test_restore_bin_rebuilds_exact_state(self):
        store = make_columnar()
        store.insert("a", 2)
        store.increment("a", 3)
        rows = store.state_rows()
        state = store.generator_state()
        clone = make_columnar()
        for item, count, priority, error in rows:
            clone.restore_bin(item, count, priority, error)
        clone.set_generator_state(state)
        assert clone.state_rows() == rows
        with pytest.raises(InvalidParameterError):
            clone.restore_bin("a", 1.0, 0.5)

    def test_apply_one_matches_apply_batch_of_one(self):
        one = make_columnar(capacity=2, seed=9)
        batch = make_columnar(capacity=2, seed=9)
        for item in ["x", "y", "z", "x", "w"]:
            one.apply_one(item, 1.0)
            batch.apply_batch(
                np.asarray([item], dtype=object),
                np.asarray([1.0]),
            )
            assert dict(one.items()) == dict(batch.items())

    def test_kernel_property_and_resolution(self):
        assert make_columnar().kernel == "numpy"
        assert make_columnar(kernel="reference").kernel == "reference"
        with pytest.raises(InvalidParameterError):
            resolve_kernel_name("vulkan")
