"""Unit tests for the two BinStore implementations."""

from __future__ import annotations

import random

import pytest

from repro.core.base import HeapBinStore, StreamSummaryBinStore
from repro.errors import (
    EmptySketchError,
    InvalidParameterError,
    UnsupportedUpdateError,
)

STORES = [StreamSummaryBinStore, HeapBinStore]


@pytest.mark.parametrize("store_cls", STORES)
class TestCommonBehaviour:
    def test_insert_get_len_contains(self, store_cls):
        store = store_cls()
        store.insert("a", 2)
        store.insert("b", 5)
        assert len(store) == 2
        assert "a" in store and "c" not in store
        assert store.get("a") == 2.0
        assert store.get("c", 9.0) == 9.0

    def test_duplicate_insert_rejected(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        with pytest.raises(InvalidParameterError):
            store.insert("a", 1)

    def test_increment_and_min_tracking(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        store.insert("b", 4)
        assert store.min_label() == "a"
        assert store.min_count() == 1.0
        store.increment("a", 10)
        assert store.min_label() == "b"
        assert store.min_count() == 4.0

    def test_remove_returns_count(self, store_cls):
        store = store_cls()
        store.insert("a", 3)
        assert store.remove("a") == 3.0
        assert len(store) == 0

    def test_relabel_keeps_count(self, store_cls):
        store = store_cls()
        store.insert("old", 6)
        store.relabel("old", "new")
        assert store.get("new") == 6.0
        assert "old" not in store

    def test_counts_snapshot(self, store_cls):
        store = store_cls()
        store.insert("a", 1)
        store.insert("b", 2)
        assert store.counts() == {"a": 1.0, "b": 2.0}

    def test_random_tie_breaking(self, store_cls):
        store = store_cls(rng=random.Random(3))
        for label in "abcdef":
            store.insert(label, 2)
        picks = {store.min_label() for _ in range(40)}
        assert picks <= set("abcdef")
        assert len(picks) > 1


class TestStreamSummaryStoreSpecifics:
    def test_rejects_fractional_counts(self):
        store = StreamSummaryBinStore()
        with pytest.raises(UnsupportedUpdateError):
            store.insert("a", 1.5)
        store.insert("b", 1)
        with pytest.raises(UnsupportedUpdateError):
            store.increment("b", 0.5)

    def test_invariant_check_passes(self):
        store = StreamSummaryBinStore()
        for index in range(20):
            store.insert(index, index % 5)
        store.check_invariants()


class TestHeapStoreSpecifics:
    def test_supports_fractional_counts(self):
        store = HeapBinStore()
        store.insert("a", 0.25)
        store.increment("a", 0.75)
        assert store.get("a") == pytest.approx(1.0)

    def test_min_on_empty_raises(self):
        with pytest.raises(EmptySketchError):
            HeapBinStore().min_count()

    def test_negative_insert_and_increment_rejected(self):
        store = HeapBinStore()
        with pytest.raises(InvalidParameterError):
            store.insert("a", -1.0)
        store.insert("b", 1.0)
        with pytest.raises(InvalidParameterError):
            store.increment("b", -0.5)

    def test_min_tracking_with_many_lazy_updates(self):
        rng = random.Random(11)
        store = HeapBinStore()
        reference = {}
        for index in range(200):
            label = f"item{index % 40}"
            if label in reference:
                delta = rng.random()
                store.increment(label, delta)
                reference[label] += delta
            else:
                value = rng.random() * 5
                store.insert(label, value)
                reference[label] = value
            expected_min = min(reference.values())
            assert store.min_count() == pytest.approx(expected_min)
            assert reference[store.min_label()] == pytest.approx(expected_min)
