"""Unit tests for variance estimation and confidence intervals."""

from __future__ import annotations

import math

import pytest

from repro.core.variance import (
    EstimateWithError,
    coverage,
    normal_confidence_interval,
    poisson_pps_variance,
    pps_variance_bound,
    subset_variance_estimate,
)
from repro.errors import InvalidParameterError


class TestSubsetVarianceEstimate:
    def test_matches_equation_five(self):
        assert subset_variance_estimate(10.0, 3) == 300.0

    def test_empty_subset_still_reports_one_unit(self):
        assert subset_variance_estimate(5.0, 0) == 25.0

    def test_zero_min_count_gives_zero_variance(self):
        assert subset_variance_estimate(0.0, 7) == 0.0

    def test_negative_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            subset_variance_estimate(-1.0, 2)
        with pytest.raises(InvalidParameterError):
            subset_variance_estimate(1.0, -2)


class TestPPSVariance:
    def test_bound_zero_for_certain_items(self):
        assert pps_variance_bound(100.0, 1.0, 10.0) == 0.0

    def test_bound_formula(self):
        assert pps_variance_bound(10.0, 0.25, 4.0) == pytest.approx(4.0 * 10.0 * 0.75)

    def test_bound_validates_inputs(self):
        with pytest.raises(InvalidParameterError):
            pps_variance_bound(1.0, 1.5, 1.0)
        with pytest.raises(InvalidParameterError):
            pps_variance_bound(-1.0, 0.5, 1.0)

    def test_poisson_variance_zero_when_all_certain(self):
        assert poisson_pps_variance([10.0, 20.0], alpha=5.0) == 0.0

    def test_poisson_variance_positive_for_tail_items(self):
        variance = poisson_pps_variance([1.0, 2.0, 100.0], alpha=10.0)
        expected = 1.0 * (1 - 0.1) / 0.1 + 4.0 * (1 - 0.2) / 0.2
        assert variance == pytest.approx(expected)

    def test_poisson_variance_validates_inputs(self):
        with pytest.raises(InvalidParameterError):
            poisson_pps_variance([1.0], alpha=0.0)
        with pytest.raises(InvalidParameterError):
            poisson_pps_variance([-1.0], alpha=1.0)


class TestConfidenceIntervals:
    def test_interval_is_symmetric_around_estimate(self):
        low, high = normal_confidence_interval(100.0, 25.0, 0.95)
        assert (low + high) / 2 == pytest.approx(100.0)
        assert high - low == pytest.approx(2 * 1.959963984540054 * 5.0, rel=1e-6)

    def test_zero_variance_gives_degenerate_interval(self):
        assert normal_confidence_interval(3.0, 0.0) == (3.0, 3.0)

    def test_higher_confidence_widens_interval(self):
        narrow = normal_confidence_interval(0.0, 1.0, 0.80)
        wide = normal_confidence_interval(0.0, 1.0, 0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_invalid_confidence_rejected(self):
        with pytest.raises(InvalidParameterError):
            normal_confidence_interval(0.0, 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            normal_confidence_interval(0.0, 1.0, 1.0)

    def test_negative_variance_clamped(self):
        low, high = normal_confidence_interval(1.0, -4.0)
        assert (low, high) == (1.0, 1.0)


class TestCoverage:
    def test_full_and_zero_coverage(self):
        intervals = [(0.0, 2.0), (1.0, 3.0)]
        assert coverage(intervals, [1.0, 2.0]) == 1.0
        assert coverage(intervals, [5.0, 6.0]) == 0.0

    def test_partial_coverage(self):
        intervals = [(0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]
        truths = [0.5, 2.0, 0.7, -1.0]
        assert coverage(intervals, truths) == 0.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            coverage([(0.0, 1.0)], [1.0, 2.0])

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            coverage([], [])


class TestEstimateWithError:
    def test_std_error_is_square_root_of_variance(self):
        estimate = EstimateWithError(estimate=10.0, variance=16.0)
        assert estimate.std_error == 4.0

    def test_negative_variance_clamped_in_std_error(self):
        estimate = EstimateWithError(estimate=10.0, variance=-4.0)
        assert estimate.std_error == 0.0

    def test_confidence_interval_delegates(self):
        estimate = EstimateWithError(estimate=0.0, variance=1.0)
        low, high = estimate.confidence_interval(0.95)
        assert low == pytest.approx(-1.96, abs=0.01)
        assert high == pytest.approx(1.96, abs=0.01)

    def test_relative_error_bound(self):
        estimate = EstimateWithError(estimate=100.0, variance=25.0)
        bound = estimate.relative_error_bound(0.95)
        assert bound == pytest.approx(1.96 * 5.0 / 100.0, rel=1e-3)

    def test_relative_error_bound_infinite_for_zero_estimate(self):
        estimate = EstimateWithError(estimate=0.0, variance=1.0)
        assert math.isinf(estimate.relative_error_bound())
