"""Unit tests for frequency models, stream generators and pathological orderings."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.streams.epochs import EpochPartition
from repro.streams.frequency import (
    FrequencyModel,
    geometric_counts,
    rescale_to_total,
    scaled_weibull_counts,
    uniform_counts,
    weibull_counts,
    zipf_counts,
)
from repro.streams.generators import (
    concatenate_streams,
    deterministic_round_robin_stream,
    exchangeable_stream,
    iid_stream,
    iterate_rows,
    rows_from_counts,
    stream_length,
)
from repro.streams.pathological import (
    adversarial_theorem11_stream,
    all_distinct_stream,
    periodic_burst_stream,
    sorted_stream,
    two_half_stream,
)


class TestFrequencyModel:
    def test_total_and_queries(self):
        model = FrequencyModel(counts={"a": 3, "b": 2})
        assert model.total == 5
        assert model.num_items == 2
        assert model.count("a") == 3
        assert model.count("missing") == 0
        assert model.subset_sum(lambda item: item == "b") == 2
        assert model.subset_total(["a", "b"]) == 5
        assert model.relative_frequency("a") == pytest.approx(0.6)

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            FrequencyModel(counts={"a": -1})

    def test_sorted_items_and_skew(self):
        model = FrequencyModel(counts={"a": 1, "b": 10, "c": 5})
        assert [item for item, _ in model.sorted_items()] == ["b", "c", "a"]
        assert [item for item, _ in model.sorted_items(ascending=True)] == ["a", "c", "b"]
        skew = model.skew_summary()
        assert skew["mean"] > 0 and skew["cv"] > 0


class TestFrequencyFactories:
    def test_weibull_counts_properties(self):
        model = weibull_counts(num_items=100, scale=50, shape=0.5)
        assert model.num_items == 100
        assert all(count >= 1 for count in model.counts.values())
        # Heavier tail for smaller shape: the max/median ratio grows.
        heavy = weibull_counts(num_items=100, scale=50, shape=0.3)
        light = weibull_counts(num_items=100, scale=50, shape=1.0)
        heavy_ratio = max(heavy.counts.values()) / np.median(list(heavy.counts.values()))
        light_ratio = max(light.counts.values()) / np.median(list(light.counts.values()))
        assert heavy_ratio > light_ratio

    def test_weibull_grid_reproducible(self):
        first = weibull_counts(num_items=50, scale=100, shape=0.4)
        second = weibull_counts(num_items=50, scale=100, shape=0.4)
        assert first.counts == second.counts

    def test_weibull_random_draws(self):
        model = weibull_counts(
            num_items=50, scale=100, shape=0.4, grid=False, rng=np.random.default_rng(0)
        )
        assert model.num_items == 50

    def test_weibull_validation(self):
        with pytest.raises(InvalidParameterError):
            weibull_counts(num_items=10, scale=0, shape=0.5)

    def test_geometric_counts(self):
        model = geometric_counts(num_items=200, success_probability=0.05)
        assert model.num_items == 200
        assert all(count >= 1 for count in model.counts.values())
        with pytest.raises(InvalidParameterError):
            geometric_counts(success_probability=1.5)

    def test_zipf_counts(self):
        model = zipf_counts(num_items=100, exponent=1.2, total=10_000)
        assert model.total == pytest.approx(10_000, rel=0.1)
        with pytest.raises(InvalidParameterError):
            zipf_counts(num_items=100, exponent=1.2, total=10)

    def test_uniform_counts(self):
        model = uniform_counts(num_items=10, count=7)
        assert model.total == 70

    def test_scaled_weibull_counts_hits_target(self):
        model = scaled_weibull_counts(num_items=500, shape=0.3, target_total=50_000)
        assert model.total == pytest.approx(50_000, rel=0.05)
        assert min(model.counts.values()) >= 1
        with pytest.raises(InvalidParameterError):
            scaled_weibull_counts(num_items=100, shape=0.3, target_total=10)

    def test_rescale_to_total(self):
        model = uniform_counts(num_items=10, count=100)
        rescaled = rescale_to_total(model, 500)
        assert rescaled.total == pytest.approx(500, rel=0.05)
        with pytest.raises(InvalidParameterError):
            rescale_to_total(model, 5)


class TestGenerators:
    def test_rows_match_counts_for_every_order(self):
        model = FrequencyModel(counts={1: 3, 2: 2, 3: 1})
        for order in ("shuffled", "grouped", "sorted_ascending", "sorted_descending"):
            rows = rows_from_counts(model, order=order, rng=np.random.default_rng(0))
            assert Counter(iterate_rows(rows)) == {1: 3, 2: 2, 3: 1}

    def test_unknown_order_rejected(self):
        model = FrequencyModel(counts={1: 1})
        with pytest.raises(InvalidParameterError):
            rows_from_counts(model, order="bogus")

    def test_sorted_orders_are_sorted(self):
        model = FrequencyModel(counts={1: 5, 2: 1, 3: 3})
        ascending = list(iterate_rows(rows_from_counts(model, order="sorted_ascending")))
        assert ascending[0] == 2 and ascending[-1] == 1
        descending = list(iterate_rows(rows_from_counts(model, order="sorted_descending")))
        assert descending[0] == 1 and descending[-1] == 2

    def test_exchangeable_stream_is_permutation(self):
        model = FrequencyModel(counts={1: 4, 2: 2})
        stream = exchangeable_stream(model, rng=np.random.default_rng(1))
        assert Counter(iterate_rows(stream)) == {1: 4, 2: 2}

    def test_string_labels_supported(self):
        model = FrequencyModel(counts={"a": 2, "b": 1})
        rows = rows_from_counts(model, order="shuffled", rng=np.random.default_rng(2))
        assert Counter(rows) == {"a": 2, "b": 1}

    def test_iid_stream_length_and_support(self):
        model = FrequencyModel(counts={1: 90, 2: 10})
        stream = iid_stream(model, 500, rng=np.random.default_rng(3))
        assert stream_length(stream) == 500
        counts = Counter(iterate_rows(stream))
        assert counts[1] > counts[2]

    def test_iid_stream_validation(self):
        model = FrequencyModel(counts={1: 1})
        with pytest.raises(InvalidParameterError):
            iid_stream(model, -1)

    def test_round_robin_interleaves(self):
        model = FrequencyModel(counts={"a": 3, "b": 1})
        rows = deterministic_round_robin_stream(model)
        assert rows == ["a", "b", "a", "a"]

    def test_concatenate_streams(self):
        first = np.array([1, 2], dtype=np.int64)
        second = np.array([3], dtype=np.int64)
        combined = concatenate_streams(first, second)
        assert list(combined) == [1, 2, 3]
        assert concatenate_streams() == []
        mixed = concatenate_streams([1, 2], ["a"])
        assert mixed == [1, 2, "a"]


class TestPathologicalStreams:
    def test_two_half_stream_order_and_truth(self):
        first = FrequencyModel(counts={1: 3, 2: 2})
        second = FrequencyModel(counts={10: 4})
        stream, combined = two_half_stream(first, second, rng=np.random.default_rng(0))
        rows = list(iterate_rows(stream))
        assert set(rows[:5]) <= {1, 2}
        assert set(rows[5:]) == {10}
        assert combined.total == 9

    def test_two_half_requires_disjoint_labels(self):
        model = FrequencyModel(counts={1: 1})
        with pytest.raises(InvalidParameterError):
            two_half_stream(model, model)

    def test_sorted_stream_ascending(self):
        model = FrequencyModel(counts={1: 5, 2: 1})
        rows = list(iterate_rows(sorted_stream(model, ascending=True)))
        assert rows[0] == 2 and rows[-1] == 1

    def test_periodic_burst_stream(self):
        background = FrequencyModel(counts={f"bg{k}": 2 for k in range(10)})
        rows, combined = periodic_burst_stream(
            "burst", burst_size=5, num_bursts=3, background=background,
            rng=np.random.default_rng(1),
        )
        assert Counter(rows)["burst"] == 15
        assert combined.count("burst") == 15
        with pytest.raises(InvalidParameterError):
            periodic_burst_stream("bg0", 5, 3, background)

    def test_all_distinct_stream(self):
        rows, model = all_distinct_stream(100)
        assert stream_length(rows) == 100
        assert model.num_items == 100
        assert all(count == 1 for count in model.counts.values())
        with pytest.raises(InvalidParameterError):
            all_distinct_stream(0)

    def test_adversarial_theorem11_stream(self):
        model = FrequencyModel(counts={1: 3, 2: 2, 3: 1})
        rows, combined = adversarial_theorem11_stream(model, num_bins=3)
        assert len(rows) == 2 * model.total
        assert combined.total == 2 * model.total
        # Real items come first, sorted descending by count.
        assert rows[0] == 1

    def test_adversarial_requires_counts_below_threshold(self):
        model = FrequencyModel(counts={1: 100, 2: 1})
        with pytest.raises(InvalidParameterError):
            adversarial_theorem11_stream(model, num_bins=3)


class TestEpochPartition:
    def test_partition_sizes_and_membership(self):
        model = FrequencyModel(counts={k: k for k in range(1, 21)})
        partition = EpochPartition(model, num_epochs=5)
        assert partition.num_epochs == 5
        assert sum(partition.epoch_sizes()) == 20
        assert sum(partition.true_totals()) == model.total
        for epoch in range(5):
            for item in partition.members(epoch):
                assert partition.epoch_of(item) == epoch

    def test_ascending_partition_orders_by_frequency(self):
        model = FrequencyModel(counts={k: k for k in range(1, 11)})
        partition = EpochPartition(model, num_epochs=2, ascending=True)
        assert partition.true_total(0) < partition.true_total(1)

    def test_predicates_and_group_key(self):
        model = FrequencyModel(counts={k: 1 for k in range(1, 9)})
        partition = EpochPartition(model, num_epochs=4)
        predicate = partition.predicate(0)
        members = set(partition.members(0))
        assert all(predicate(item) for item in members)
        assert not predicate("not-an-item")
        key = partition.group_key()
        assert key(next(iter(members))) == 0

    def test_validation(self):
        model = FrequencyModel(counts={1: 1, 2: 1})
        with pytest.raises(InvalidParameterError):
            EpochPartition(model, num_epochs=0)
        with pytest.raises(InvalidParameterError):
            EpochPartition(model, num_epochs=3)
        partition = EpochPartition(model, num_epochs=2)
        with pytest.raises(InvalidParameterError):
            partition.predicate(7)
