"""Unit tests for Deterministic Space Saving."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.errors import InvalidParameterError, UnsupportedUpdateError


class TestConstruction:
    def test_requires_positive_capacity(self):
        with pytest.raises(InvalidParameterError):
            DeterministicSpaceSaving(0)

    def test_unknown_store_rejected(self):
        with pytest.raises(InvalidParameterError):
            DeterministicSpaceSaving(4, store="nope")

    def test_capacity_property(self):
        assert DeterministicSpaceSaving(7).capacity == 7


class TestExactRegime:
    """With fewer distinct items than bins the sketch is exact."""

    def test_counts_exact_when_under_capacity(self):
        sketch = DeterministicSpaceSaving(capacity=10)
        rows = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        sketch.extend(rows)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3
        assert sketch.estimate("c") == 2
        assert sketch.estimate("missing") == 0
        assert sketch.error_bound() == 0.0

    def test_rows_processed_and_total_weight(self):
        sketch = DeterministicSpaceSaving(capacity=4)
        sketch.extend(["x", "y", "x"])
        assert sketch.rows_processed == 3
        assert sketch.total_weight == 3.0


class TestOverflowBehaviour:
    def test_new_item_takes_over_minimum_bin(self):
        sketch = DeterministicSpaceSaving(capacity=2)
        sketch.extend(["a", "a", "b"])
        sketch.update("c")
        # "c" must replace "b" (the minimum) and inherit its count plus one.
        assert "c" in sketch.estimates()
        assert "b" not in sketch.estimates()
        assert sketch.estimate("c") == 2

    def test_estimates_always_upper_bounds(self):
        sketch = DeterministicSpaceSaving(capacity=5, seed=0)
        rows = (["a"] * 30 + ["b"] * 20 + list(range(40)))
        sketch.extend(rows)
        truth = Counter(rows)
        for item, estimate in sketch.estimates().items():
            assert estimate >= truth[item]

    def test_error_bound_caps_overestimate(self):
        rows = ["hot"] * 50 + list(range(100))
        sketch = DeterministicSpaceSaving(capacity=10, seed=1)
        sketch.extend(rows)
        bound = sketch.error_bound()
        assert bound <= len(rows) / 10
        assert sketch.estimate("hot") - 50 <= bound

    def test_total_estimate_preserved(self):
        rows = ["a"] * 10 + ["b"] * 5 + list(range(20))
        sketch = DeterministicSpaceSaving(capacity=6, seed=2)
        sketch.extend(rows)
        assert sum(sketch.estimates().values()) == len(rows)

    def test_sketch_size_never_exceeds_capacity(self):
        sketch = DeterministicSpaceSaving(capacity=8, seed=3)
        sketch.extend(range(200))
        assert len(sketch) == 8


class TestGuarantees:
    def test_frequent_item_always_retained(self):
        # "hot" has frequency 1/2 > 1/m, so it must be in the sketch.
        rows = []
        for index in range(100):
            rows.append("hot")
            rows.append(f"cold{index}")
        sketch = DeterministicSpaceSaving(capacity=4, seed=4)
        sketch.extend(rows)
        assert "hot" in sketch.estimates()

    def test_guaranteed_heavy_hitters_are_truly_frequent(self):
        rows = ["hot"] * 120 + [f"c{i}" for i in range(80)]
        sketch = DeterministicSpaceSaving(capacity=10, seed=5)
        sketch.extend(rows)
        guaranteed = sketch.guaranteed_heavy_hitters(0.3)
        assert "hot" in guaranteed
        truth = Counter(rows)
        for item in guaranteed:
            assert truth[item] >= 0.3 * len(rows)

    def test_lower_bound_never_exceeds_truth(self):
        rows = ["a"] * 25 + ["b"] * 10 + list(range(60))
        sketch = DeterministicSpaceSaving(capacity=6, seed=6)
        sketch.extend(rows)
        truth = Counter(rows)
        for item in sketch.estimates():
            assert sketch.lower_bound(item) <= truth[item]

    def test_invalid_phi_rejected(self):
        sketch = DeterministicSpaceSaving(capacity=3)
        sketch.update("a")
        with pytest.raises(InvalidParameterError):
            sketch.guaranteed_heavy_hitters(0.0)
        with pytest.raises(InvalidParameterError):
            sketch.heavy_hitters(1.5)


class TestMisraGriesIsomorphism:
    def test_soft_threshold_relationship(self):
        rows = ["a"] * 12 + ["b"] * 7 + list(range(30))
        sketch = DeterministicSpaceSaving(capacity=5, seed=7)
        sketch.extend(rows)
        min_count = min(sketch.estimates().values())
        for item, mg_estimate in sketch.to_misra_gries_estimates().items():
            assert mg_estimate == pytest.approx(
                max(0.0, sketch.estimate(item) - min_count)
            )

    def test_misra_gries_estimates_empty_for_empty_sketch(self):
        assert DeterministicSpaceSaving(capacity=3).to_misra_gries_estimates() == {}


class TestWeightsAndErrors:
    def test_zero_or_negative_weight_rejected(self):
        sketch = DeterministicSpaceSaving(capacity=3)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 0)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", -2)

    def test_integer_weights_on_stream_summary_store(self):
        sketch = DeterministicSpaceSaving(capacity=3)
        sketch.update("a", 5)
        assert sketch.estimate("a") == 5

    def test_float_weights_require_heap_store(self):
        sketch = DeterministicSpaceSaving(capacity=3, store="heap")
        sketch.update("a", 2.5)
        assert sketch.estimate("a") == pytest.approx(2.5)

    def test_bins_expose_acquisition_error(self):
        sketch = DeterministicSpaceSaving(capacity=2, seed=8)
        sketch.extend(["a", "a", "b", "c"])
        bins = {label: (count, error) for label, count, error in sketch.bins()}
        assert bins["c"][1] >= 1.0
