"""Unit tests for the serving observability layer (:mod:`repro.serve.stats`).

Covers the fixed-bucket latency histogram (observation, bucket-bound
quantiles, merging, JSON-safe snapshots), the snapshot-delta rate
tracker, the shared per-registry metrics recorder, and the live metrics
snapshot assembled by ``SketchServer.metrics()``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import LatencyHistogram, ServeMetrics, SketchServer
from repro.serve.stats import BUCKET_BOUNDS_MS, RateTracker


class FakeTimer:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# LatencyHistogram
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_empty_snapshot(self):
        histogram = LatencyHistogram()
        snapshot = histogram.as_dict()
        assert snapshot["count"] == 0
        assert snapshot["mean_ms"] is None
        assert snapshot["p99_ms"] is None
        assert snapshot["buckets"] == []

    def test_observations_land_in_the_right_buckets(self):
        histogram = LatencyHistogram()
        histogram.observe(0.000005)  # 5 µs -> first bucket (<= 0.01 ms)
        histogram.observe(0.0004)  # 0.4 ms -> <= 0.5 ms bucket
        histogram.observe(0.003)  # 3 ms -> <= 5 ms bucket
        assert histogram.buckets() == [[0.01, 1], [0.5, 1], [5.0, 1]]
        assert histogram.count == 3

    def test_negative_latency_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.buckets() == [[BUCKET_BOUNDS_MS[0], 1]]
        assert histogram.total_seconds == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe(12.5)  # 12500 ms, past the last 5000 ms bound
        assert histogram.buckets() == [[None, 1]]
        assert histogram.quantile_ms(0.5) == pytest.approx(12500.0)

    def test_quantiles_are_bucket_upper_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.observe(0.0002)  # 0.2 ms -> 0.25 ms bucket
        histogram.observe(0.040)  # 40 ms -> 50 ms bucket
        assert histogram.quantile_ms(0.50) == 0.25
        assert histogram.quantile_ms(0.95) == 0.25
        assert histogram.quantile_ms(1.0) == 50.0

    def test_merge_adds_samples(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.observe(0.001)
        right.observe(0.1)
        right.observe(0.1)
        left.merge(right)
        assert left.count == 3
        assert left.max_seconds == pytest.approx(0.1)
        assert left.quantile_ms(0.99) == 100.0

    def test_snapshot_is_json_safe(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0003)
        histogram.observe(10.0)
        round_trip = json.loads(json.dumps(histogram.as_dict()))
        assert round_trip["count"] == 2
        assert round_trip["max_ms"] == pytest.approx(10000.0)


# ----------------------------------------------------------------------
# RateTracker
# ----------------------------------------------------------------------
class TestRateTracker:
    def test_first_sample_anchors_and_returns_none(self):
        tracker = RateTracker(timer=FakeTimer())
        assert tracker.sample(100) is None

    def test_rate_is_delta_over_elapsed(self):
        timer = FakeTimer()
        tracker = RateTracker(timer=timer)
        tracker.sample(100)
        timer.advance(2.0)
        assert tracker.sample(300) == pytest.approx(100.0)
        timer.advance(4.0)
        assert tracker.sample(300) == pytest.approx(0.0)

    def test_zero_elapsed_returns_none(self):
        timer = FakeTimer()
        tracker = RateTracker(timer=timer)
        tracker.sample(0)
        assert tracker.sample(50) is None


# ----------------------------------------------------------------------
# ServeMetrics
# ----------------------------------------------------------------------
class TestServeMetrics:
    def test_observe_since_records_per_op(self):
        timer = FakeTimer()
        metrics = ServeMetrics(timer=timer)
        started = metrics.start()
        timer.advance(0.002)
        metrics.observe_since("estimate", started)
        metrics.observe("total", 0.00005)
        assert metrics.query_count("estimate") == 1
        assert metrics.query_count("missing") == 0
        assert metrics.query_count() == 2
        snapshot = metrics.as_dict()
        assert list(snapshot) == ["estimate", "total"]  # sorted
        assert snapshot["estimate"]["p50_ms"] == 2.5


# ----------------------------------------------------------------------
# SketchServer.metrics()
# ----------------------------------------------------------------------
class TestServerMetrics:
    def test_snapshot_shape_and_counters(self):
        async def drive():
            async with SketchServer() as server:
                client = server.client
                await client.create(
                    "clicks", "unbiased_space_saving", size=64, seed=0
                )
                await client.update_batch("clicks", ["a", "b", "a"])
                await client.flush("clicks")
                await client.total("clicks")
                await client.estimate("clicks", "a")
                return server.metrics(detail=True)

        snapshot = asyncio.run(drive())
        assert snapshot["sessions"]["live"] == 1
        assert snapshot["ingest"]["rows_applied"] == 3
        assert snapshot["ingest"]["rows_pending"] == 0
        assert snapshot["queries"]["total"]["count"] == 1
        assert snapshot["queries"]["estimate"]["count"] == 1
        assert snapshot["queues"]["depth_total"] == 0
        assert snapshot["queues"]["deepest"] == []  # only non-empty queues listed
        assert snapshot["quota"] is None
        assert snapshot["tiering"] is None
        # The whole snapshot must survive the wire.
        json.dumps(snapshot)

    def test_rows_per_sec_is_a_snapshot_delta(self):
        async def drive():
            async with SketchServer() as server:
                client = server.client
                await client.create(
                    "clicks", "unbiased_space_saving", size=64, seed=0
                )
                first = server.metrics()
                await client.update_batch("clicks", ["a"] * 500)
                await client.flush("clicks")
                second = server.metrics()
                return first, second

        first, second = asyncio.run(drive())
        assert first["ingest"]["rows_per_sec"] is None  # anchor sample
        assert second["ingest"]["rows_per_sec"] > 0.0
