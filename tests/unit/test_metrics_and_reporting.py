"""Unit tests for evaluation metrics and the text reporting helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.evaluation.metrics import (
    bias,
    binned_relative_error,
    empirical_inclusion_probability,
    mean_squared_error,
    quantiles,
    relative_bias,
    relative_efficiency,
    relative_mse,
    relative_rmse,
    root_mean_squared_error,
)
from repro.evaluation.reporting import (
    format_series,
    format_summary,
    format_table,
    print_experiment,
)


class TestErrorMetrics:
    def test_mse_and_rmse(self):
        assert mean_squared_error([1.0, 3.0], [0.0, 0.0]) == 5.0
        assert root_mean_squared_error([3.0], [0.0]) == 3.0

    def test_relative_rmse_and_mse(self):
        assert relative_rmse([12.0, 8.0], [10.0, 10.0]) == pytest.approx(0.2)
        assert relative_mse([12.0, 8.0], [10.0, 10.0]) == pytest.approx(0.04)

    def test_relative_rmse_zero_truth_rejected(self):
        with pytest.raises(InvalidParameterError):
            relative_rmse([1.0], [0.0])

    def test_bias_and_relative_bias(self):
        assert bias([12.0, 8.0], [10.0, 10.0]) == 0.0
        assert relative_bias([12.0, 12.0], [10.0, 10.0]) == pytest.approx(0.2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_squared_error([1.0], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            mean_squared_error([], [])

    def test_relative_efficiency(self):
        truths = [10.0, 10.0]
        baseline = [14.0, 6.0]
        candidate = [11.0, 9.0]
        assert relative_efficiency(baseline, candidate, truths) == pytest.approx(16.0)
        assert relative_efficiency(candidate, candidate, truths) == 1.0
        assert relative_efficiency(baseline, truths, truths) == float("inf")


class TestInclusionAndBinning:
    def test_empirical_inclusion_probability(self):
        runs = [{"a", "b"}, {"a"}, {"a", "c"}]
        probabilities = empirical_inclusion_probability(runs, ["a", "b", "c", "d"])
        assert probabilities["a"] == 1.0
        assert probabilities["b"] == pytest.approx(1 / 3)
        assert probabilities["d"] == 0.0
        with pytest.raises(InvalidParameterError):
            empirical_inclusion_probability([], ["a"])

    def test_binned_relative_error_linear_and_log(self):
        truths = [10.0, 20.0, 100.0, 200.0]
        estimates = [12.0, 20.0, 90.0, 220.0]
        linear = binned_relative_error(truths, estimates, num_bins=2)
        assert len(linear) == 2
        assert sum(size for _, __, size in linear) == 4
        logarithmic = binned_relative_error(truths, estimates, num_bins=2, log_bins=True)
        assert len(logarithmic) == 2

    def test_binned_relative_error_requires_positive_truths(self):
        with pytest.raises(InvalidParameterError):
            binned_relative_error([0.0], [1.0])

    def test_quantiles(self):
        summary = quantiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary[0.5] == 3.0
        with pytest.raises(InvalidParameterError):
            quantiles([])


class TestReporting:
    def test_format_table_alignment_and_truncation(self):
        rows = [{"name": "alpha", "value": 1.23456}, {"name": "b", "value": 2e9}]
        text = format_table(rows, precision=3)
        assert "name" in text and "alpha" in text
        truncated = format_table(rows * 30, max_rows=5)
        assert "more rows" in truncated
        assert format_table([]) == "(no rows)"

    def test_format_summary(self):
        text = format_summary({"metric": 0.5, "other": 2.0})
        assert "metric" in text and "0.5" in text
        assert format_summary({}) == "(empty summary)"

    def test_format_series(self):
        text = format_series("coverage", [0.9, 1.0])
        assert text.startswith("coverage:")
        assert "0.9" in text

    def test_print_experiment_outputs_sections(self, capsys):
        print_experiment(
            "Demo",
            summary={"a": 1.0},
            rows=[{"x": 1}],
            series={"s": [1.0, 2.0]},
        )
        captured = capsys.readouterr().out
        assert "Demo" in captured
        assert "a" in captured and "s:" in captured and "x" in captured
