"""Protocol-layer conformance suite.

Asserts that every registered sketch spec builds an estimator satisfying
the protocols it declares, that the :func:`repro.api.capabilities`
inspector reflects configuration (tracked vs untracked hashed sketches),
that capability-typed entry points raise :class:`CapabilityError` instead
of ``AttributeError``, and that the one-release deprecation shims still
work while warning.

This module (together with ``test_build_facade.py``) is the CI
``deprecations`` job's test subset: it must pass under
``-W error::DeprecationWarning``, so nothing here may route through a
deprecated shim outside ``pytest.deprecated_call()``.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CAPABILITY_PROTOCOLS,
    HEAVY_HITTERS,
    MERGE,
    POINT,
    SERIALIZE,
    SUBSET_SUM,
    HeavyHitterEstimator,
    Mergeable,
    PointEstimator,
    Serializable,
    SubsetSumEstimator as SubsetSumProtocol,
    available_specs,
    build,
    capabilities,
    get_spec,
    iter_specs,
    require_capability,
    supports,
)
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError, InvalidParameterError
from repro.frequent.count_sketch import CountSketch
from repro.frequent.countmin import CountMinSketch
from repro.io.registry import load_bytes
from repro.query.subset_sum import SubsetSumEstimator

SIZE = 64
SEED = 20180618

#: A duplicate-free workload every spec (including the unit-row family)
#: can ingest through scalar updates.
WORKLOAD = [f"item{i % 40}" for i in range(400)]


def built(name):
    session = build(name, size=SIZE, seed=SEED)
    session.extend(WORKLOAD)
    return session


# ----------------------------------------------------------------------
# Conformance: every registered spec satisfies what it declares
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", iter_specs(), ids=lambda spec: spec.name)
def test_spec_conformance(spec):
    session = built(spec.name)
    estimator = session.estimator
    observed = capabilities(estimator)
    assert spec.capabilities <= observed, (
        f"{spec.name} declares {sorted(spec.capabilities)} "
        f"but provides {sorted(observed)}"
    )
    # Structural protocol checks agree with the inspector.
    for name, protocol in CAPABILITY_PROTOCOLS.items():
        if name in observed:
            assert isinstance(estimator, protocol)


@pytest.mark.parametrize("spec", iter_specs(), ids=lambda spec: spec.name)
def test_declared_capabilities_are_exercisable(spec):
    """Each declared capability answers real queries with the right types."""
    estimator = built(spec.name).estimator
    caps = capabilities(estimator)
    if POINT in caps:
        estimates = estimator.estimates()
        assert estimates, "ingested estimator should retain items"
        item = next(iter(estimates))
        assert isinstance(estimator.estimate(item), float)
    if SUBSET_SUM in caps:
        predicate = lambda item: True  # noqa: E731
        total = estimator.subset_sum(predicate)
        assert isinstance(total, float)
        with_error = estimator.subset_sum_with_error(predicate)
        assert isinstance(with_error, EstimateWithError)
        assert with_error.variance >= 0.0
    if HEAVY_HITTERS in caps:
        hitters = estimator.heavy_hitters(0.02)
        assert isinstance(hitters, dict)
        ranked = estimator.top_k(3)
        assert len(ranked) <= 3
        assert all(isinstance(pair, tuple) and len(pair) == 2 for pair in ranked)
    if SERIALIZE in caps:
        restored = load_bytes(estimator.to_bytes())
        assert type(restored) is type(estimator)
        if POINT in caps:
            assert restored.estimates() == estimator.estimates()
    if MERGE in caps:
        other = built(spec.name).estimator
        merged = estimator.merge(other)
        assert merged is not None


# ----------------------------------------------------------------------
# The capabilities inspector
# ----------------------------------------------------------------------
def test_capabilities_structural_baseline():
    sketch = UnbiasedSpaceSaving(capacity=8, seed=0)
    assert capabilities(sketch) == frozenset(
        {POINT, SUBSET_SUM, HEAVY_HITTERS, MERGE, SERIALIZE}
    )
    assert isinstance(sketch, PointEstimator)
    assert isinstance(sketch, SubsetSumProtocol)
    assert isinstance(sketch, HeavyHitterEstimator)
    assert isinstance(sketch, Mergeable)
    assert isinstance(sketch, Serializable)


def test_capabilities_of_plain_objects():
    assert capabilities(42) == frozenset()
    assert capabilities({"a": 1.0}) == frozenset()


def test_configuration_refines_capabilities():
    tracked = CountMinSketch(width=32, depth=2, track_heavy_hitters=4)
    untracked = CountMinSketch(width=32, depth=2)
    assert {POINT, HEAVY_HITTERS} <= capabilities(tracked)
    assert POINT not in capabilities(untracked)
    assert HEAVY_HITTERS not in capabilities(untracked)
    assert SERIALIZE in capabilities(untracked)

    sketch = CountSketch(width=32, depth=3, seed=0)
    assert capabilities(sketch) == frozenset({SERIALIZE})
    assert capabilities(CountSketch(width=32, depth=3, seed=0, track_keys=4)) == (
        frozenset({SERIALIZE, POINT, HEAVY_HITTERS})
    )


def test_supports_and_require():
    sketch = UnbiasedSpaceSaving(capacity=4, seed=0)
    assert supports(sketch, SUBSET_SUM)
    require_capability(sketch, SUBSET_SUM)
    with pytest.raises(CapabilityError):
        supports(sketch, "telepathy")
    with pytest.raises(CapabilityError):
        require_capability(CountSketch(width=8, depth=2), POINT, operation="estimates")


# ----------------------------------------------------------------------
# CapabilityError surfaces
# ----------------------------------------------------------------------
def test_count_sketch_enumeration_requires_tracking():
    sketch = CountSketch(width=32, depth=3, seed=1)
    sketch.update("hot")
    with pytest.raises(CapabilityError):
        sketch.estimates()
    with pytest.raises(CapabilityError):
        sketch.heavy_hitters(0.1)
    # An explicit candidate set always works.
    assert set(sketch.estimates(candidates=["hot", "cold"])) == {"hot", "cold"}


def test_count_sketch_tracked_view():
    sketch = CountSketch(width=64, depth=5, seed=3, track_keys=4)
    rows = ["hot"] * 60 + ["warm"] * 30 + [f"cold{i}" for i in range(20)]
    sketch.extend(rows)
    view = sketch.estimates()
    assert "hot" in view and len(view) <= 4
    assert "hot" in sketch.heavy_hitters(0.3)
    assert sketch.top_k(1)[0][0] == "hot"


def test_countmin_heavy_hitters_error_is_backward_compatible():
    sketch = CountMinSketch(width=16, depth=2)
    sketch.update("a")
    with pytest.raises(CapabilityError):
        sketch.heavy_hitters(0.1)
    # CapabilityError remains catchable as the historical type.
    with pytest.raises(InvalidParameterError):
        sketch.heavy_hitters(0.1)
    with pytest.raises(CapabilityError):
        sketch.estimates()
    assert sketch.estimates(candidates=["a"]) == {"a": 1.0}


def test_countmin_heavy_hitters_matches_base_contract():
    sketch = CountMinSketch(width=128, depth=4, track_heavy_hitters=8, seed=3)
    sketch.extend(["hot"] * 200 + [f"c{i}" for i in range(100)])
    hitters = sketch.heavy_hitters(0.3)
    assert "hot" in hitters
    assert all(value > 0 for value in hitters.values())
    assert sketch.top_k(1)[0][0] == "hot"


# ----------------------------------------------------------------------
# SubsetSumEstimator capability handling (query layer)
# ----------------------------------------------------------------------
class _EstimatesForOnly:
    """A source exposing only the legacy estimates_for(items) shape."""

    def __init__(self, values):
        self._values = values

    def estimates_for(self, items):
        return {item: self._values.get(item, 0.0) for item in items}


def test_subset_sum_estimator_accepts_point_source_with_candidates():
    sketch = CountSketch(width=128, depth=5, seed=2)
    sketch.extend(["x"] * 30 + ["y"] * 10)
    estimator = SubsetSumEstimator(sketch, candidates=["x", "y", "z"])
    assert estimator.subset_sum(lambda item: item == "x") == pytest.approx(30.0, abs=10)
    result = estimator.subset_sum_with_error(lambda item: True)
    assert isinstance(result, EstimateWithError)


def test_subset_sum_estimator_accepts_estimates_for_only_source():
    source = _EstimatesForOnly({"a": 3.0, "b": 2.0})
    estimator = SubsetSumEstimator(source, candidates=["a", "b"])
    assert estimator.subset_sum(lambda item: True) == 5.0


def test_subset_sum_estimator_rejects_enumeration_without_candidates():
    sketch = CountSketch(width=16, depth=2, seed=0)
    estimator = SubsetSumEstimator(sketch)
    with pytest.raises(CapabilityError, match="candidates"):
        estimator.subset_sum(lambda item: True)
    with pytest.raises(CapabilityError):
        SubsetSumEstimator(_EstimatesForOnly({})).subset_sum(lambda item: True)


def test_subset_sum_estimator_invalid_source_stays_invalid_parameter():
    with pytest.raises(InvalidParameterError):
        SubsetSumEstimator(42).subset_sum(lambda item: True)


# ----------------------------------------------------------------------
# Mergeable retrofit
# ----------------------------------------------------------------------
def test_unbiased_space_saving_merge_method():
    left = UnbiasedSpaceSaving(capacity=16, seed=0).extend(["a"] * 10 + ["b"] * 5)
    right = UnbiasedSpaceSaving(capacity=16, seed=1).extend(["b"] * 7 + ["c"] * 3)
    merged = left.merge(right, seed=7)
    assert merged.total_estimate() == pytest.approx(25.0)
    # Inputs are untouched.
    assert left.total_estimate() == pytest.approx(15.0)
    assert right.total_estimate() == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Informative __repr__ (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", iter_specs(), ids=lambda spec: spec.name)
def test_estimator_repr_is_informative(spec):
    estimator = built(spec.name).estimator
    text = repr(estimator)
    assert type(estimator).__name__ in text
    assert "=" in text  # at least one configured parameter


def test_session_repr_names_spec_and_backend():
    session = built("unbiased_space_saving")
    text = repr(session)
    assert "unbiased_space_saving" in text
    assert "inline" in text
    assert "rows_processed=400" in text


def test_ensemble_reprs():
    from repro.distributed.parallel import ParallelSketchExecutor
    from repro.distributed.sharded import ShardedSketch

    sharded = ShardedSketch(8, 4, seed=0)
    assert "num_shards=4" in repr(sharded)
    with ParallelSketchExecutor(8, 4, seed=0, num_workers=0) as executor:
        assert "num_workers=0" in repr(executor)


# ----------------------------------------------------------------------
# The one-release deprecation shims are gone: the old spellings now fail
# fast with AttributeError rather than silently diverging.
# ----------------------------------------------------------------------
def test_deprecated_shims_removed():
    assert not hasattr(UnbiasedSpaceSaving(capacity=8, seed=0), "update_stream")
    assert not hasattr(CountSketch(width=32, depth=3, seed=0), "estimates_for")


# ----------------------------------------------------------------------
# Registry wiring
# ----------------------------------------------------------------------
def test_available_specs_is_sorted_and_nonempty():
    names = available_specs()
    assert names == tuple(sorted(names))
    assert "unbiased_space_saving" in names


def test_get_spec_unknown_name_lists_registry():
    with pytest.raises(InvalidParameterError, match="unbiased_space_saving"):
        get_spec("not_a_sketch")


def test_specs_resolve_through_io_registry():
    """Serializable specs share class resolution with repro.io."""
    from repro.io.registry import registered_types

    io_types = registered_types()
    for spec in iter_specs():
        cls = spec.resolve()
        assert cls.__name__ == spec.type_name
        if spec.module is None:
            assert spec.type_name in io_types
