"""Unit tests for reduction policies, GeneralizedSpaceSaving and merges."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.merge import (
    combine_estimates,
    merge_many_unbiased,
    merge_misra_gries,
    merge_unbiased,
    reduce_bins_unbiased,
)
from repro.core.reduction import (
    DeterministicPairReduction,
    GeneralizedSpaceSaving,
    PPSReduction,
    UnbiasedPairReduction,
)
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError


class TestReductionPolicies:
    def test_deterministic_pair_reduction_keeps_newcomer(self):
        policy = DeterministicPairReduction()
        bins = {"a": 5.0, "b": 2.0, "new": 1.0}
        reduced = policy.reduce(bins, 2, random.Random(0), "new")
        assert set(reduced) == {"a", "new"}
        assert reduced["new"] == 3.0
        assert not policy.unbiased

    def test_unbiased_pair_reduction_preserves_total(self):
        policy = UnbiasedPairReduction()
        bins = {"a": 5.0, "b": 2.0, "new": 1.0}
        reduced = policy.reduce(bins, 2, random.Random(1), "new")
        assert sum(reduced.values()) == pytest.approx(8.0)
        assert len(reduced) == 2
        assert policy.unbiased

    def test_unbiased_pair_reduction_expectation(self):
        policy = UnbiasedPairReduction()
        bins = {"big": 9.0, "small": 3.0, "new": 1.0}
        keeps_new = 0
        trials = 4000
        for seed in range(trials):
            reduced = policy.reduce(dict(bins), 2, random.Random(seed), "new")
            if "new" in reduced:
                keeps_new += 1
        # P(keep new) = 1 / (3 + 1) = 0.25.
        assert keeps_new / trials == pytest.approx(0.25, abs=0.03)

    def test_pps_reduction_shrinks_to_capacity(self):
        policy = PPSReduction()
        bins = {f"i{k}": float(k + 1) for k in range(20)}
        reduced = policy.reduce(bins, 5, random.Random(2), "i0")
        assert len(reduced) <= 5


class TestGeneralizedSpaceSaving:
    def test_capacity_respected(self):
        sketch = GeneralizedSpaceSaving(capacity=4, seed=0)
        sketch.extend(range(100))
        assert len(sketch) <= 4

    def test_total_preserved_with_unbiased_policy(self):
        sketch = GeneralizedSpaceSaving(capacity=3, seed=1)
        sketch.extend(range(60))
        assert sum(sketch.estimates().values()) == pytest.approx(60.0)

    def test_matches_deterministic_with_deterministic_policy(self):
        rows = ["a", "a", "b", "c", "d", "a", "e"]
        general = GeneralizedSpaceSaving(
            capacity=3, policy=DeterministicPairReduction(), seed=2
        )
        general.extend(rows)
        reference = DeterministicSpaceSaving(capacity=3, seed=2)
        reference.extend(rows)
        assert sum(general.estimates().values()) == sum(reference.estimates().values())

    def test_add_aggregate_with_pps_policy(self):
        sketch = GeneralizedSpaceSaving(capacity=5, policy=PPSReduction(), seed=3)
        for index in range(30):
            sketch.add_aggregate(f"unit{index}", float(index + 1))
        assert len(sketch) <= 5
        assert sketch.total_weight == pytest.approx(sum(range(1, 31)))

    def test_invalid_updates_rejected(self):
        sketch = GeneralizedSpaceSaving(capacity=2)
        with pytest.raises(InvalidParameterError):
            sketch.update("a", 0)
        with pytest.raises(InvalidParameterError):
            sketch.add_aggregate("a", -1.0)

    def test_subset_sum_with_error(self):
        sketch = GeneralizedSpaceSaving(capacity=3, seed=4)
        sketch.extend(range(50))
        result = sketch.subset_sum_with_error(lambda item: item < 25)
        assert result.variance >= 0.0


def _build_sketch(rows, capacity, seed):
    sketch = UnbiasedSpaceSaving(capacity, seed=seed)
    sketch.extend(rows)
    return sketch


class TestCombineAndReduce:
    def test_combine_estimates_sums_overlapping_items(self):
        first = _build_sketch(["a", "a", "b"], 5, 0)
        second = _build_sketch(["a", "c"], 5, 1)
        combined = combine_estimates([first, second])
        assert combined["a"] == 3.0
        assert combined["b"] == 1.0
        assert combined["c"] == 1.0

    def test_reduce_noop_when_under_capacity(self):
        bins = {"a": 1.0, "b": 2.0}
        assert reduce_bins_unbiased(bins, 5) == bins

    def test_reduce_methods_cap_size(self):
        bins = {f"i{k}": float(k + 1) for k in range(40)}
        for method in ("pps", "poisson", "priority"):
            reduced = reduce_bins_unbiased(
                bins, 10, method=method, rng=random.Random(3)
            )
            if method == "poisson":
                # Poisson reduction has random size with expectation 10.
                assert len(reduced) <= 40
            else:
                assert len(reduced) <= 10

    def test_reduce_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError):
            reduce_bins_unbiased({"a": 1.0}, 1, method="nope")

    def test_reduce_preserves_expected_total(self):
        bins = {f"i{k}": float((k % 7) + 1) for k in range(30)}
        total = sum(bins.values())
        totals = []
        for seed in range(300):
            reduced = reduce_bins_unbiased(bins, 8, method="pps", rng=random.Random(seed))
            totals.append(sum(reduced.values()))
        assert np.mean(totals) == pytest.approx(total, rel=0.05)


class TestUnbiasedMerge:
    def test_merge_preserves_rows_and_weight(self):
        first = _build_sketch(range(100), 20, 0)
        second = _build_sketch(range(50, 200), 20, 1)
        merged = merge_unbiased(first, second, seed=2)
        assert merged.rows_processed == first.rows_processed + second.rows_processed
        assert merged.total_weight == first.total_weight + second.total_weight
        assert len(merged) <= merged.capacity

    def test_merge_keeps_capacity_of_first_by_default(self):
        first = _build_sketch(range(100), 16, 0)
        second = _build_sketch(range(100, 160), 8, 1)
        merged = merge_unbiased(first, second, seed=3)
        assert merged.capacity == 16

    def test_merge_expectation_preserved_for_shared_frequent_item(self):
        rows_first = ["hot"] * 30 + [f"a{k}" for k in range(40)]
        rows_second = ["hot"] * 25 + [f"b{k}" for k in range(40)]
        estimates = []
        for seed in range(200):
            first = _build_sketch(rows_first, 12, seed)
            second = _build_sketch(rows_second, 12, seed + 1000)
            merged = merge_unbiased(first, second, seed=seed)
            estimates.append(merged.estimate("hot"))
        assert np.mean(estimates) == pytest.approx(55.0, rel=0.1)

    def test_merge_many_matches_pairwise_totals(self):
        sketches = [_build_sketch(range(k * 50, (k + 1) * 50), 10, k) for k in range(4)]
        merged = merge_many_unbiased(sketches, seed=5)
        assert merged.rows_processed == 200
        assert len(merged) <= 10

    def test_merge_many_requires_at_least_one(self):
        with pytest.raises(InvalidParameterError):
            merge_many_unbiased([])

    def test_merged_sketch_can_keep_ingesting(self):
        first = _build_sketch(range(60), 10, 0)
        second = _build_sketch(range(60, 120), 10, 1)
        merged = merge_unbiased(first, second, seed=6)
        merged.update("new-item")
        assert merged.rows_processed == 121


class TestMisraGriesMerge:
    def test_merge_caps_nonzero_counters(self):
        first = DeterministicSpaceSaving(10, seed=0)
        first.extend(range(100))
        second = DeterministicSpaceSaving(10, seed=1)
        second.extend(range(50, 150))
        merged = merge_misra_gries(first, second)
        assert len(merged) <= 10

    def test_merge_biases_counts_downward(self):
        first = DeterministicSpaceSaving(5, seed=0)
        first.extend(["hot"] * 20 + list(range(30)))
        second = DeterministicSpaceSaving(5, seed=1)
        second.extend(["hot"] * 15 + list(range(30, 60)))
        merged = merge_misra_gries(first, second)
        assert sum(merged.values()) <= sum(
            combine_estimates([first, second]).values()
        )

    def test_merge_under_capacity_is_exact_sum(self):
        first = DeterministicSpaceSaving(10, seed=0)
        first.extend(["a", "b"])
        second = DeterministicSpaceSaving(10, seed=1)
        second.extend(["a", "c"])
        merged = merge_misra_gries(first, second)
        assert merged == {"a": 2.0, "b": 1.0, "c": 1.0}
