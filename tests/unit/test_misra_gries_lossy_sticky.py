"""Unit tests for Misra-Gries, Lossy Counting and Sticky Sampling."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.frequent.lossy_counting import LossyCountingSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.frequent.sticky_sampling import StickySamplingSketch
from repro.errors import InvalidParameterError, UnsupportedUpdateError


class TestMisraGries:
    def test_exact_under_capacity(self):
        sketch = MisraGriesSketch(capacity=5)
        sketch.extend(["a", "b", "a"])
        assert sketch.estimate("a") == 2
        assert sketch.estimate("b") == 1
        assert sketch.decrements == 0

    def test_estimates_never_exceed_truth(self):
        rows = ["hot"] * 30 + [f"c{i}" for i in range(50)] * 2
        sketch = MisraGriesSketch(capacity=8)
        sketch.extend(rows)
        truth = Counter(rows)
        for item, estimate in sketch.estimates().items():
            assert estimate <= truth[item]

    def test_undercount_bounded_by_decrements(self):
        rows = ["hot"] * 40 + [f"c{i}" for i in range(100)]
        sketch = MisraGriesSketch(capacity=10)
        sketch.extend(rows)
        truth = Counter(rows)
        for item in truth:
            assert truth[item] - sketch.estimate(item) <= sketch.error_bound()

    def test_error_bound_at_most_n_over_m_plus_one(self):
        rows = list(range(120)) * 2
        capacity = 11
        sketch = MisraGriesSketch(capacity=capacity)
        sketch.extend(rows)
        assert sketch.error_bound() <= len(rows) / (capacity + 1)

    def test_capacity_respected(self):
        sketch = MisraGriesSketch(capacity=6)
        sketch.extend(range(300))
        assert len(sketch.estimates()) <= 6

    def test_frequent_item_always_has_nonzero_counter(self):
        rows = (["hot"] * 50 + [f"c{i}" for i in range(100)])
        sketch = MisraGriesSketch(capacity=4)
        sketch.extend(rows)
        assert sketch.estimate("hot") > 0

    def test_integer_weight_updates(self):
        sketch = MisraGriesSketch(capacity=4)
        sketch.update("a", 5)
        assert sketch.estimate("a") == 5

    def test_invalid_weights_rejected(self):
        sketch = MisraGriesSketch(capacity=4)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 0.5)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", -1)

    def test_guaranteed_heavy_hitters(self):
        rows = ["hot"] * 60 + [f"c{i}" for i in range(60)]
        sketch = MisraGriesSketch(capacity=10)
        sketch.extend(rows)
        assert "hot" in sketch.guaranteed_heavy_hitters(0.3)
        with pytest.raises(InvalidParameterError):
            sketch.guaranteed_heavy_hitters(2.0)

    def test_space_saving_isomorphism(self):
        """Adding decrements back recovers the Space Saving estimates (§5.2)."""
        rows = ["a"] * 9 + ["b"] * 6 + list(range(20))
        misra_gries = MisraGriesSketch(capacity=4)
        misra_gries.extend(rows)
        space_saving = DeterministicSpaceSaving(capacity=4, seed=0)
        space_saving.extend(rows)
        # Both sketches process the same prefix deterministically up to tie
        # breaks; the recovered estimates must agree for the clear frequent
        # item and the totals must line up with the isomorphism.
        recovered = misra_gries.to_space_saving_estimates()
        assert recovered["a"] == pytest.approx(
            misra_gries.estimate("a") + misra_gries.decrements
        )
        assert misra_gries.decrements <= min(space_saving.estimates().values())

    def test_merge_respects_capacity_and_guarantee(self):
        first = MisraGriesSketch(capacity=5)
        first.extend(["a"] * 10 + list(range(20)))
        second = MisraGriesSketch(capacity=5)
        second.extend(["a"] * 5 + list(range(20, 40)))
        merged = first.merge(second)
        assert len(merged.estimates()) <= 5
        assert merged.estimate("a") <= 15
        assert merged.rows_processed == first.rows_processed + second.rows_processed

    def test_merge_requires_same_capacity(self):
        with pytest.raises(InvalidParameterError):
            MisraGriesSketch(capacity=4).merge(MisraGriesSketch(capacity=5))


class TestLossyCounting:
    def test_epsilon_validation(self):
        with pytest.raises(InvalidParameterError):
            LossyCountingSketch(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            LossyCountingSketch(epsilon=1.0)

    def test_unit_weight_only(self):
        sketch = LossyCountingSketch(epsilon=0.1)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 2)

    def test_estimates_never_exceed_truth(self):
        rows = ["hot"] * 40 + [f"c{i}" for i in range(200)]
        sketch = LossyCountingSketch(epsilon=0.05)
        sketch.extend(rows)
        truth = Counter(rows)
        for item, estimate in sketch.estimates().items():
            assert estimate <= truth[item]

    def test_undercount_bounded_by_epsilon_n(self):
        rows = ["hot"] * 50 + [f"c{i}" for i in range(300)]
        sketch = LossyCountingSketch(epsilon=0.05)
        sketch.extend(rows)
        truth = Counter(rows)
        for item in truth:
            assert truth[item] - sketch.estimate(item) <= sketch.error_bound() + 1e-9

    def test_frequent_items_no_false_negatives(self):
        rows = ["hot"] * 100 + [f"c{i}" for i in range(150)]
        sketch = LossyCountingSketch(epsilon=0.02)
        sketch.extend(rows)
        frequent = sketch.frequent_items(support=0.3)
        assert "hot" in frequent

    def test_pruning_happens_at_bucket_boundaries(self):
        sketch = LossyCountingSketch(epsilon=0.25)  # bucket width 4
        sketch.extend(["a", "b", "c", "d"])
        # After one full bucket every singleton has count + delta == bucket,
        # so they are all pruned.
        assert len(sketch) == 0
        assert sketch.current_bucket == 2

    def test_upper_bound_at_least_estimate(self):
        sketch = LossyCountingSketch(epsilon=0.1)
        sketch.extend(["a"] * 20 + list(range(50)))
        for item in sketch.estimates():
            assert sketch.upper_bound(item) >= sketch.estimate(item)

    def test_invalid_support_rejected(self):
        sketch = LossyCountingSketch(epsilon=0.1)
        sketch.update("a")
        with pytest.raises(InvalidParameterError):
            sketch.frequent_items(0.0)


class TestStickySampling:
    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            StickySamplingSketch(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            StickySamplingSketch(epsilon=0.1, delta=1.0)

    def test_unit_weight_only(self):
        sketch = StickySamplingSketch(epsilon=0.1, seed=0)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 3)

    def test_estimates_never_exceed_truth(self):
        rows = ["hot"] * 60 + [f"c{i}" for i in range(100)]
        sketch = StickySamplingSketch(epsilon=0.05, seed=1)
        sketch.extend(rows)
        truth = Counter(rows)
        for item, estimate in sketch.estimates().items():
            assert estimate <= truth[item]

    def test_frequent_item_reported(self):
        rows = ["hot"] * 300 + [f"c{i}" for i in range(100)]
        sketch = StickySamplingSketch(epsilon=0.05, delta=0.01, seed=2)
        sketch.extend(rows)
        assert "hot" in sketch.frequent_items(support=0.5)

    def test_sampling_rate_decreases_on_long_streams(self):
        sketch = StickySamplingSketch(epsilon=0.2, delta=0.1, seed=3)
        sketch.extend(f"i{k}" for k in range(5000))
        assert sketch.sampling_rate < 1.0

    def test_invalid_support_rejected(self):
        sketch = StickySamplingSketch(epsilon=0.1, seed=4)
        sketch.update("a")
        with pytest.raises(InvalidParameterError):
            sketch.frequent_items(0.0)
