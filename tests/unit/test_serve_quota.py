"""Unit tests for per-tenant serving quotas (:mod:`repro.serve.quota`).

Covers the token bucket under injected-clock jumps (forward, zero and
backward), the debt-based serialization of concurrent producers sharing
one tenant, and the admission limits (sessions, resident counters)
enforced by the registry on create/adopt/drop/evict.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import InvalidParameterError, QuotaExceededError
from repro.serve import (
    QuotaManager,
    SketchRegistry,
    SketchServer,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    """A manually-driven monotonic clock (jumps may go backward)."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 30.0, clock=clock)
        assert bucket.tokens == 30.0
        assert bucket.try_acquire(30.0)
        assert not bucket.try_acquire(1.0)

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 100.0, clock=clock)
        assert bucket.try_acquire(100.0)
        clock.advance(2.5)
        assert bucket.tokens == pytest.approx(25.0)
        assert bucket.try_acquire(25.0)
        assert not bucket.try_acquire(0.1)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 50.0, clock=clock)
        clock.advance(1e6)  # a huge forward jump mints at most one burst
        assert bucket.tokens == 50.0

    def test_backward_clock_jump_keeps_balance(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 100.0, clock=clock)
        assert bucket.try_acquire(60.0)
        clock.advance(-500.0)  # adjusted clock must not mint or burn tokens
        assert bucket.tokens == pytest.approx(40.0)
        # ...and refill resumes from the new origin, not the old one.
        clock.advance(1.0)
        assert bucket.tokens == pytest.approx(50.0)

    def test_zero_elapsed_is_a_no_op(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 100.0, clock=clock)
        assert bucket.try_acquire(30.0)
        assert bucket.tokens == pytest.approx(70.0)
        assert bucket.tokens == pytest.approx(70.0)

    def test_reserve_runs_a_debt_with_increasing_delays(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 100.0, clock=clock)
        assert bucket.reserve(100.0) == 0.0
        # Two further producers reserving concurrently get serialized:
        # each sees the debt the previous one left.
        first = bucket.reserve(50.0)
        second = bucket.reserve(50.0)
        assert first == pytest.approx(0.5)
        assert second == pytest.approx(1.0)
        # Waiting the quoted delay pays the debt off exactly.
        clock.advance(second)
        assert bucket.tokens == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(0.0)
        with pytest.raises(InvalidParameterError):
            TokenBucket(10.0, 0.0)

    def test_burst_defaults_to_one_second_of_rate(self):
        bucket = TokenBucket(7.0, clock=FakeClock())
        assert bucket.burst == 7.0


# ----------------------------------------------------------------------
# TenantQuota / QuotaManager
# ----------------------------------------------------------------------
class TestQuotaManager:
    def test_quota_validation(self):
        with pytest.raises(InvalidParameterError):
            TenantQuota(max_sessions=0)
        with pytest.raises(InvalidParameterError):
            TenantQuota(max_rows_per_sec=-1.0)
        with pytest.raises(InvalidParameterError):
            TenantQuota(max_resident_counters=0)

    def test_unlisted_tenant_is_unlimited_without_default(self):
        manager = QuotaManager(clock=FakeClock())
        assert manager.reserve_rows("anyone", 10**9) == 0.0
        assert manager.try_rows("anyone", 10**9)
        manager.acquire_session("anyone", 10**9)

    def test_per_tenant_overrides_default(self):
        clock = FakeClock()
        manager = QuotaManager(
            default=TenantQuota(max_sessions=1),
            per_tenant={"big": TenantQuota(max_sessions=3)},
            clock=clock,
        )
        manager.acquire_session("small")
        with pytest.raises(QuotaExceededError):
            manager.acquire_session("small")
        for _ in range(3):
            manager.acquire_session("big")
        with pytest.raises(QuotaExceededError):
            manager.acquire_session("big")

    def test_resident_counter_quota(self):
        manager = QuotaManager(
            default=TenantQuota(max_resident_counters=100), clock=FakeClock()
        )
        manager.acquire_session("t", 60)
        with pytest.raises(QuotaExceededError):
            manager.acquire_session("t", 41)
        manager.acquire_session("t", 40)
        manager.release_session("t", 60)
        manager.acquire_session("t", 60)

    def test_rejections_are_counted(self):
        clock = FakeClock()
        manager = QuotaManager(
            default=TenantQuota(max_sessions=1, max_rows_per_sec=10.0),
            clock=clock,
        )
        manager.acquire_session("t")
        with pytest.raises(QuotaExceededError):
            manager.acquire_session("t")
        assert manager.try_rows("t", 10)
        assert not manager.try_rows("t", 1)
        snapshot = manager.as_dict()
        assert snapshot["sessions_rejected"] == 1
        assert snapshot["rows_rejected"] == 1
        assert snapshot["tenants"]["t"]["sessions"] == 1

    def test_refill_across_clock_jump_unblocks_rate(self):
        clock = FakeClock()
        manager = QuotaManager(
            default=TenantQuota(max_rows_per_sec=100.0), clock=clock
        )
        assert manager.try_rows("t", 100)
        assert not manager.try_rows("t", 50)
        clock.advance(0.5)
        assert manager.try_rows("t", 50)
        clock.advance(-10.0)  # backward jump: no free tokens either
        assert not manager.try_rows("t", 1)


# ----------------------------------------------------------------------
# Enforcement through the served ingest paths
# ----------------------------------------------------------------------
class TestServedSessionQuota:
    def _registry(self, quota, **kwargs):
        return SketchRegistry(quota=quota, **kwargs)

    def test_offer_path_raises_over_rate(self):
        clock = FakeClock()
        quota = QuotaManager(
            default=TenantQuota(max_rows_per_sec=100.0), clock=clock
        )
        registry = self._registry(quota, clock=clock)

        async def drive():
            served = registry.create(
                "clicks", "unbiased_space_saving", size=16, seed=0
            )
            assert served.offer_batch(["a"] * 100)
            with pytest.raises(QuotaExceededError):
                served.offer_batch(["a"])
            clock.advance(1.0)
            assert served.offer_batch(["a"] * 100)
            await served.drain()
            return served.stats.rows_applied

        assert asyncio.run(drive()) == 200

    def test_put_path_sleeps_off_the_debt(self):
        # Real clock here: the blocking path must actually delay, and the
        # delay must scale with the reserved debt.
        quota = QuotaManager(default=TenantQuota(max_rows_per_sec=4000.0))
        registry = self._registry(quota)

        async def drive():
            served = registry.create(
                "clicks", "unbiased_space_saving", size=16, seed=0
            )
            loop = asyncio.get_running_loop()
            started = loop.time()
            await served.put_batch(["a"] * 4000)  # burst: immediate
            burst_elapsed = loop.time() - started
            await served.put_batch(["a"] * 400)  # debt: ~0.1 s
            throttled_elapsed = loop.time() - started
            await served.drain()
            return burst_elapsed, throttled_elapsed

        burst_elapsed, throttled_elapsed = asyncio.run(drive())
        assert burst_elapsed < 0.05
        assert throttled_elapsed >= 0.09
        assert quota.throttle_events == 1
        assert quota.rows_throttled == 400

    def test_concurrent_producers_of_one_tenant_serialize(self):
        # Many producers race put_batch on one tenant; the token bucket's
        # debt accounting must serialize them so the total wall time is
        # (total_rows - burst) / rate, not one burst each.
        quota = QuotaManager(
            default=TenantQuota(max_rows_per_sec=8000.0, burst_rows=2000.0)
        )
        registry = self._registry(quota)

        async def producer(served, rows):
            await served.put_batch(["x"] * rows)

        async def drive():
            served = registry.create(
                "clicks", "unbiased_space_saving", size=16, seed=0
            )
            loop = asyncio.get_running_loop()
            started = loop.time()
            # 4 producers x 1000 rows = 4000 rows against a 2000 burst:
            # 2000 rows ride the burst, 2000 must wait ~0.25 s at 8k/s.
            await asyncio.gather(
                *(producer(served, 1000) for _ in range(4))
            )
            elapsed = loop.time() - started
            await served.drain()
            return elapsed, served.stats.rows_applied

        elapsed, applied = asyncio.run(drive())
        assert applied == 4000
        assert elapsed >= 0.2  # rate limit actually bit
        assert elapsed < 2.0  # ...but did not serialize the burst away

    def test_race_between_try_and_reserve_is_consistent(self):
        # Interleaved non-blocking and blocking producers on one bucket:
        # accepted rows can never exceed burst + rate * elapsed.
        clock = FakeClock()
        quota = QuotaManager(
            default=TenantQuota(max_rows_per_sec=100.0, burst_rows=100.0),
            clock=clock,
        )
        accepted = 0
        for step in range(50):
            if quota.try_rows("t", 10):
                accepted += 10
            delay = quota.reserve_rows("t", 5)
            accepted += 5  # blocking path always admits, after a delay
            if delay:
                clock.advance(delay)
        budget = 100.0 + 100.0 * (clock.now - 1000.0)
        assert accepted <= budget + 1e-6

    def test_admission_quota_on_create_and_release_on_drop(self):
        quota = QuotaManager(default=TenantQuota(max_sessions=1))
        registry = self._registry(quota)
        registry.create("a", "unbiased_space_saving", size=16, seed=0)
        with pytest.raises(QuotaExceededError):
            registry.create("b", "unbiased_space_saving", size=16, seed=0)
        registry.drop("a")
        registry.create("b", "unbiased_space_saving", size=16, seed=0)

    def test_resident_counters_scale_with_shards(self):
        quota = QuotaManager(default=TenantQuota(max_resident_counters=1000))
        registry = self._registry(quota)
        registry.create(
            "sharded",
            "unbiased_space_saving",
            size=200,
            seed=0,
            backend="sharded",
            num_shards=4,
        )
        assert quota.usage("default")["resident_counters"] == 800
        with pytest.raises(QuotaExceededError):
            registry.create("more", "unbiased_space_saving", size=201, seed=0)
        registry.create("fits", "unbiased_space_saving", size=200, seed=0)

    def test_server_level_quota_wiring_and_conflict(self):
        quota = QuotaManager(default=TenantQuota(max_sessions=1))

        async def drive():
            async with SketchServer(quota=quota) as server:
                client = server.client
                await client.create(
                    "a", "unbiased_space_saving", size=16, seed=0
                )
                with pytest.raises(QuotaExceededError):
                    await client.create(
                        "b", "unbiased_space_saving", size=16, seed=0
                    )

        asyncio.run(drive())
        with pytest.raises(InvalidParameterError):
            SketchServer(registry=SketchRegistry(), quota=quota)
