"""Unit tests for the perf-regression gate (``tools/check_perf.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_perf", REPO_ROOT / "tools" / "check_perf.py"
)
check_perf = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_perf)


def write_record(
    path: Path, throughputs: dict, *, workload: dict = None, config: dict = None
) -> Path:
    record = {
        "benchmark": "update_throughput",
        "modes": {
            name: {"seconds": 1.0, "rows_per_sec": value}
            for name, value in throughputs.items()
        },
    }
    if workload is not None:
        record["workload"] = workload
    if config is not None:
        record["config"] = config
    path.write_text(json.dumps(record))
    return path


@pytest.fixture
def baseline(tmp_path):
    return write_record(
        tmp_path / "baseline.json",
        {"scalar": 1_000.0, "batched": 8_000.0, "serve": 6_000.0},
    )


def gate(record, baseline, *extra):
    return check_perf.main(
        ["--record", str(record), "--baseline", str(baseline), *extra]
    )


class TestCheckPerf:
    def test_passes_when_within_threshold(self, tmp_path, baseline):
        record = write_record(
            tmp_path / "record.json",
            {"scalar": 900.0, "batched": 7_000.0, "serve": 6_500.0},
        )
        assert gate(record, baseline) == 0

    def test_fails_on_regression_beyond_threshold(self, tmp_path, baseline):
        record = write_record(
            tmp_path / "record.json",
            {"scalar": 1_000.0, "batched": 5_000.0, "serve": 6_000.0},
        )
        assert gate(record, baseline) == 1  # batched dropped 37.5% > 25%
        # A looser threshold admits the same drop.
        assert gate(record, baseline, "--threshold", "0.5") == 0

    def test_fails_when_a_mode_disappears(self, tmp_path, baseline):
        record = write_record(
            tmp_path / "record.json", {"scalar": 1_000.0, "batched": 8_000.0}
        )
        assert gate(record, baseline) == 1  # serve silently gone

    def test_new_modes_never_fail(self, tmp_path, baseline):
        record = write_record(
            tmp_path / "record.json",
            {
                "scalar": 1_000.0,
                "batched": 8_000.0,
                "serve": 6_000.0,
                "windowed": 3_000.0,
            },
        )
        assert gate(record, baseline) == 0

    def test_normalized_comparison_ignores_machine_speed(self, tmp_path, baseline):
        # Uniformly 3x slower hardware: absolute gate fails, normalized passes.
        record = write_record(
            tmp_path / "record.json",
            {"scalar": 333.0, "batched": 2_666.0, "serve": 2_000.0},
        )
        assert gate(record, baseline) == 1
        assert gate(record, baseline, "--normalize", "scalar") == 0

    def test_update_baseline_copies_record(self, tmp_path):
        record = write_record(tmp_path / "record.json", {"scalar": 10.0})
        target = tmp_path / "new" / "baseline.json"
        assert (
            check_perf.main(
                [
                    "--record", str(record),
                    "--baseline", str(target),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert json.loads(target.read_text()) == json.loads(record.read_text())

    def test_missing_files_exit_with_message(self, tmp_path, baseline):
        with pytest.raises(SystemExit):
            gate(tmp_path / "absent.json", baseline)
        record = write_record(tmp_path / "record.json", {"scalar": 1.0})
        with pytest.raises(SystemExit):
            gate(record, tmp_path / "no_baseline.json")
        not_a_record = tmp_path / "junk.json"
        not_a_record.write_text("{}")
        with pytest.raises(SystemExit):
            gate(not_a_record, baseline)

    def test_committed_baseline_is_a_valid_record(self):
        """The baseline the CI gate compares against must stay loadable."""
        throughputs = check_perf.load_throughputs(check_perf.DEFAULT_BASELINE)
        assert set(throughputs) >= {"scalar", "batched", "serve"}
        assert all(value > 0 for value in throughputs.values())

    def test_committed_baseline_exercises_the_worker_pool(self):
        """num_workers must stay >= 2 so 'parallel' really spans processes."""
        record = check_perf.load_record(check_perf.DEFAULT_BASELINE)
        assert record["config"]["num_workers"] >= 2


class TestConfigMatchRefusal:
    """A baseline measured under a different config is not comparable."""

    WORKLOAD = {"distribution": "zipf(s=1.1)", "rows": 1000, "seed": 0}
    CONFIG = {"capacity": 256, "num_shards": 4, "num_workers": 2}

    def test_matching_configs_compare_normally(self, tmp_path):
        baseline = write_record(
            tmp_path / "baseline.json", {"scalar": 1_000.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        record = write_record(
            tmp_path / "record.json", {"scalar": 990.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        assert gate(record, baseline) == 0

    def test_mismatched_config_is_refused(self, tmp_path):
        baseline = write_record(
            tmp_path / "baseline.json", {"scalar": 1_000.0},
            workload=self.WORKLOAD,
            config={**self.CONFIG, "num_workers": 1},
        )
        record = write_record(
            tmp_path / "record.json", {"scalar": 5_000.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        # Refused (exit 2) even though no mode regressed.
        assert gate(record, baseline) == 2

    def test_mismatched_workload_is_refused(self, tmp_path):
        baseline = write_record(
            tmp_path / "baseline.json", {"scalar": 1_000.0},
            workload={**self.WORKLOAD, "rows": 999}, config=self.CONFIG,
        )
        record = write_record(
            tmp_path / "record.json", {"scalar": 1_000.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        assert gate(record, baseline) == 2

    def test_missing_section_on_one_side_is_refused(self, tmp_path):
        baseline = write_record(tmp_path / "baseline.json", {"scalar": 1_000.0})
        record = write_record(
            tmp_path / "record.json", {"scalar": 1_000.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        assert gate(record, baseline) == 2

    def test_update_baseline_is_the_escape_hatch(self, tmp_path):
        record = write_record(
            tmp_path / "record.json", {"scalar": 1_000.0},
            workload=self.WORKLOAD, config=self.CONFIG,
        )
        target = tmp_path / "baseline.json"
        assert (
            check_perf.main(
                ["--record", str(record), "--baseline", str(target),
                 "--update-baseline"]
            )
            == 0
        )
        assert gate(record, target) == 0

    def test_mismatch_report_names_the_keys(self, tmp_path):
        baseline = {"workload": self.WORKLOAD, "config": {**self.CONFIG, "num_workers": 1}}
        current = {"workload": self.WORKLOAD, "config": self.CONFIG}
        problems = check_perf.config_mismatches(baseline, current)
        assert problems == ["config.num_workers: baseline 1 != record 2"]
