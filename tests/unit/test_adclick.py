"""Unit tests for the synthetic ad-click dataset."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.streams.adclick import (
    AdClickDataset,
    AdFeatureSpec,
    default_criteo_like_features,
)


@pytest.fixture(scope="module")
def dataset() -> AdClickDataset:
    return AdClickDataset(num_rows=3_000, seed=42)


class TestFeatureSpec:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AdFeatureSpec("x", cardinality=1)
        with pytest.raises(InvalidParameterError):
            AdFeatureSpec("x", cardinality=5, zipf_exponent=0)
        with pytest.raises(InvalidParameterError):
            AdFeatureSpec("x", cardinality=5, correlation=1.5)

    def test_default_layout_has_nine_features(self):
        specs = default_criteo_like_features()
        assert len(specs) == 9
        assert len({spec.name for spec in specs}) == 9


class TestDatasetGeneration:
    def test_row_count_and_shape(self, dataset):
        impressions = list(dataset.impressions())
        assert len(impressions) == 3_000
        assert all(len(row) == dataset.num_features for row in impressions)

    def test_reproducible_given_seed(self):
        first = AdClickDataset(num_rows=500, seed=7)
        second = AdClickDataset(num_rows=500, seed=7)
        assert list(first.impressions()) == list(second.impressions())
        assert first.click_count() == second.click_count()

    def test_different_seeds_differ(self):
        first = AdClickDataset(num_rows=500, seed=1)
        second = AdClickDataset(num_rows=500, seed=2)
        assert list(first.impressions()) != list(second.impressions())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AdClickDataset(num_rows=0)
        with pytest.raises(InvalidParameterError):
            AdClickDataset(num_rows=10, base_click_rate=0.0)
        with pytest.raises(InvalidParameterError):
            AdClickDataset(num_rows=10, features=[])

    def test_child_feature_must_follow_parent(self):
        bad = [
            AdFeatureSpec("child", cardinality=10, parent=1, correlation=0.5),
            AdFeatureSpec("parent", cardinality=10),
        ]
        with pytest.raises(InvalidParameterError):
            AdClickDataset(num_rows=10, features=bad)

    def test_click_rate_in_reasonable_range(self, dataset):
        rate = dataset.overall_click_rate()
        assert 0.0 < rate < 0.5
        assert dataset.click_count() == pytest.approx(rate * dataset.num_rows)


class TestGroundTruth:
    def test_marginal_counts_sum_to_rows(self, dataset):
        for feature in range(dataset.num_features):
            counts = dataset.marginal_counts(feature)
            assert sum(counts.values()) == dataset.num_rows

    def test_pairwise_counts_sum_to_rows(self, dataset):
        counts = dataset.pairwise_counts(1, 5)
        assert sum(counts.values()) == dataset.num_rows

    def test_pairwise_requires_distinct_features(self, dataset):
        with pytest.raises(InvalidParameterError):
            dataset.pairwise_counts(2, 2)

    def test_tuple_counts_sum_to_rows(self, dataset):
        counts = dataset.tuple_counts()
        assert sum(counts.values()) == dataset.num_rows

    def test_marginals_are_skewed(self, dataset):
        counts = sorted(dataset.marginal_counts(0).values(), reverse=True)
        head = sum(counts[: max(1, len(counts) // 20)])
        assert head / dataset.num_rows > 0.2

    def test_correlated_features_not_independent(self, dataset):
        # advertiser (1) is strongly tied to ad_id (0), so the number of
        # distinct (ad_id, advertiser) pairs is far below the independent
        # expectation of min(num_rows, |ad_id| x |advertiser|) diversity.
        pair_counts = dataset.pairwise_counts(0, 1)
        distinct_ads = len(dataset.marginal_counts(0))
        assert len(pair_counts) < distinct_ads * 3

    def test_click_counts_by_feature(self, dataset):
        clicks = dataset.click_counts_by_feature(0)
        assert sum(clicks.values()) == dataset.click_count()

    def test_feature_index_lookup(self, dataset):
        assert dataset.feature_index("advertiser") == 1
        with pytest.raises(InvalidParameterError):
            dataset.feature_index("nope")

    def test_invalid_feature_index_rejected(self, dataset):
        with pytest.raises(InvalidParameterError):
            dataset.marginal_counts(99)


class TestStreamsAndPredicates:
    def test_clicked_impressions_subset(self, dataset):
        clicked = list(dataset.clicked_impressions())
        assert len(clicked) == dataset.click_count()

    def test_labeled_impressions(self, dataset):
        labeled = list(dataset.labeled_impressions())
        assert len(labeled) == dataset.num_rows
        assert sum(1 for _, clicked in labeled if clicked) == dataset.click_count()

    def test_marginal_predicate(self, dataset):
        counts = dataset.marginal_counts(2)
        value = next(iter(counts))
        predicate = dataset.marginal_predicate(2, value)
        matching = sum(1 for row in dataset.impressions() if predicate(row))
        assert matching == counts[value]

    def test_pairwise_predicate(self, dataset):
        counts = dataset.pairwise_counts(1, 5)
        (value_a, value_b) = next(iter(counts))
        predicate = dataset.pairwise_predicate(1, value_a, 5, value_b)
        matching = sum(1 for row in dataset.impressions() if predicate(row))
        assert matching == counts[(value_a, value_b)]
