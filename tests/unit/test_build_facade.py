"""``repro.build`` facade tests.

Covers: sessions for every registered spec, backend-transparent equality
(inline / sharded / parallel sessions equal to the hand-constructed
sketches and executors on a seeded workload), the normalized query
surface (EstimateWithError / QueryResult everywhere), construction
validation, and query-engine integration.

Part of the CI ``deprecations`` job subset: must pass under
``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    QueryResult,
    StreamSession,
    available_specs,
    build,
    get_spec,
)
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.distributed.parallel import ParallelSketchExecutor
from repro.distributed.sharded import ShardedSketch
from repro.errors import CapabilityError, InvalidParameterError
from repro.query.engine import SketchQueryEngine

SEED = 20180618
NUM_SHARDS = 4
CAPACITY = 64

#: Duplicate-free scalar workload ingestible by every spec.
SCALAR_WORKLOAD = [f"item{i % 50}" for i in range(500)]


# ----------------------------------------------------------------------
# Sessions for every registered spec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", available_specs())
def test_build_produces_working_session(name):
    session = build(name, size=CAPACITY, seed=SEED)
    assert isinstance(session, StreamSession)
    assert session.spec_name == name
    assert session.backend == "inline"
    session.extend(SCALAR_WORKLOAD)
    assert session.rows_processed == len(SCALAR_WORKLOAD)
    # The declared capabilities drive the normalized surface.
    spec = get_spec(name)
    assert spec.capabilities <= session.capabilities
    assert isinstance(session.total(), EstimateWithError)
    point = session.estimate("item0")
    assert isinstance(point, EstimateWithError)
    if "subset_sum" in session.capabilities:
        result = session.subset_sum(lambda item: item.endswith("0"))
        assert isinstance(result, EstimateWithError)
    if "heavy_hitters" in session.capabilities:
        assert isinstance(session.heavy_hitters(0.01), QueryResult)
        ranked = session.top_k(3)
        assert isinstance(ranked, QueryResult)
        assert len(ranked.groups) <= 3


@pytest.mark.parametrize("name", ["misra_gries", "bottom_k", "deterministic_space_saving"])
def test_facade_equals_direct_construction(name):
    """Inline sessions are the hand-built sketch, state for state."""
    session = build(name, size=CAPACITY, seed=SEED)
    direct = get_spec(name).resolve()(CAPACITY, seed=SEED)
    session.extend(SCALAR_WORKLOAD)
    direct.extend(SCALAR_WORKLOAD)
    assert session.estimates() == direct.estimates()


# ----------------------------------------------------------------------
# Backend-transparent equality on a seeded workload (acceptance check)
# ----------------------------------------------------------------------
@pytest.fixture
def chunked_workload(batch_workload):
    chunk = len(batch_workload) // 3 + 1
    return [
        batch_workload[start : start + chunk]
        for start in range(0, len(batch_workload), chunk)
    ]


def _ingest_chunks(target, chunks):
    for chunk in chunks:
        target.update_batch(chunk)
    return target


def test_inline_session_equals_hand_built_sketch(chunked_workload):
    session = _ingest_chunks(
        build("unbiased_space_saving", size=CAPACITY, seed=SEED), chunked_workload
    )
    direct = _ingest_chunks(UnbiasedSpaceSaving(CAPACITY, seed=SEED), chunked_workload)
    assert session.estimates() == direct.estimates()
    assert session.total().estimate == direct.total_estimate()


def test_sharded_session_equals_hand_built_sharded(chunked_workload):
    session = _ingest_chunks(
        build(
            "unbiased_space_saving",
            size=CAPACITY,
            backend="sharded",
            num_shards=NUM_SHARDS,
            seed=SEED,
        ),
        chunked_workload,
    )
    direct = _ingest_chunks(
        ShardedSketch(CAPACITY, NUM_SHARDS, seed=SEED), chunked_workload
    )
    assert session.estimates() == direct.estimates()
    predicate = lambda item: item % 3 == 0  # noqa: E731
    assert session.subset_sum(predicate) == direct.subset_sum_with_error(predicate)
    assert session.merged(seed=7).estimates() == direct.merged(seed=7).estimates()


def test_parallel_session_equals_hand_built_executor(chunked_workload):
    with build(
        "unbiased_space_saving",
        size=CAPACITY,
        backend="parallel",
        num_shards=NUM_SHARDS,
        num_workers=0,
        seed=SEED,
    ) as session:
        _ingest_chunks(session, chunked_workload)
        with ParallelSketchExecutor(
            CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0
        ) as direct:
            _ingest_chunks(direct, chunked_workload)
            assert session.estimates() == direct.estimates()
            assert session.total().estimate == direct.total_estimate()


def test_all_backends_agree_on_seeded_workload(chunked_workload):
    """sharded and parallel answers coincide shard for shard."""
    sessions = {
        backend: build(
            "unbiased_space_saving",
            size=CAPACITY,
            backend=backend,
            num_shards=NUM_SHARDS,
            seed=SEED,
            **({"num_workers": 0} if backend == "parallel" else {}),
        )
        for backend in ("sharded", "parallel")
    }
    for session in sessions.values():
        _ingest_chunks(session, chunked_workload)
    assert sessions["sharded"].estimates() == sessions["parallel"].estimates()
    assert (
        sessions["sharded"].total().estimate == sessions["parallel"].total().estimate
    )
    sessions["parallel"].close()


def test_numpy_batches_route_through_backends(chunked_workload):
    array_chunks = [np.asarray(chunk, dtype=np.int64) for chunk in chunked_workload]
    list_session = _ingest_chunks(
        build("unbiased_space_saving", size=CAPACITY, backend="sharded",
              num_shards=NUM_SHARDS, seed=SEED),
        chunked_workload,
    )
    array_session = _ingest_chunks(
        build("unbiased_space_saving", size=CAPACITY, backend="sharded",
              num_shards=NUM_SHARDS, seed=SEED),
        array_chunks,
    )
    assert list_session.estimates() == array_session.estimates()


# ----------------------------------------------------------------------
# Normalized query surface
# ----------------------------------------------------------------------
def test_every_read_path_is_normalized():
    session = build("unbiased_space_saving", size=16, seed=0)
    session.update_batch(["a"] * 30 + ["b"] * 10 + ["c"] * 5)
    assert isinstance(session.estimate("a"), EstimateWithError)
    assert isinstance(session.estimate("missing"), EstimateWithError)
    assert session.estimate("missing").estimate == 0.0
    assert isinstance(session.subset_sum(lambda item: item == "a"), EstimateWithError)
    assert isinstance(session.total(), EstimateWithError)
    hitters = session.heavy_hitters(0.5)
    assert isinstance(hitters, QueryResult) and hitters.is_grouped
    ranked = session.top_k(2)
    assert list(ranked.groups) == ["a", "b"]
    grouped = session.select_sum(group_by=lambda item: item)
    assert isinstance(grouped, QueryResult)
    scalar = session.select_sum(where=lambda item: item != "c")
    assert scalar.with_error.estimate == pytest.approx(40.0)


def test_point_estimates_carry_subset_variance():
    session = build("unbiased_space_saving", size=4, seed=0)
    session.update_batch(list(range(100)))  # force evictions -> min_count > 0
    point = session.estimate(0)
    assert point.variance > 0.0


def test_total_uses_exact_bookkeeping_not_tracked_view():
    """A hashed-sketch session must report the true ingested weight, not
    the sum of its bounded tracked view."""
    session = build("countmin", size=256, seed=0)
    session.update_batch([f"item{i}" for i in range(1000)])
    total = session.total()
    assert total.estimate == 1000.0
    assert total.variance == 0.0


def test_capabilities_of_session_reflect_estimator():
    """repro.capabilities(session) must not over-report the session's
    structural surface beyond what the wrapped estimator answers."""
    from repro.api import capabilities

    gated = build("countmin", size=64, seed=0, track_heavy_hitters=0)
    assert "point" not in capabilities(gated)
    assert "subset_sum" not in capabilities(gated)
    assert "heavy_hitters" not in capabilities(gated)
    full = build("unbiased_space_saving", size=8, seed=0)
    assert {"point", "subset_sum", "heavy_hitters"} <= capabilities(full)


def test_session_capability_errors():
    session = build("countmin", size=64, seed=0, track_heavy_hitters=0)
    session.update("a")
    with pytest.raises(CapabilityError):
        session.estimates()
    with pytest.raises(CapabilityError):
        session.heavy_hitters(0.1)
    with pytest.raises(CapabilityError):
        session.subset_sum(lambda item: True)
    with pytest.raises(CapabilityError):
        session.merged()
    with pytest.raises(CapabilityError):
        session.merge(session)


def test_session_merge_combines_mergeable_estimators():
    left = build("misra_gries", size=32, seed=0).extend(["a"] * 5 + ["b"] * 3)
    right = build("misra_gries", size=32, seed=0).extend(["a"] * 2 + ["c"] * 4)
    combined = left.merge(right)
    assert isinstance(combined, StreamSession)
    assert combined.estimate("a").estimate >= 5.0


def test_session_serialization_surface(tmp_path):
    session = build("unbiased_space_saving", size=16, seed=3)
    session.update_batch(["x", "y", "x"])
    from repro.io.registry import load_bytes

    restored = load_bytes(session.to_bytes())
    assert restored.estimates() == session.estimates()
    path = tmp_path / "session.sketch"
    session.save_checkpoint(path)
    assert path.exists()


def test_wrapping_requires_update_method():
    with pytest.raises(CapabilityError):
        StreamSession(object())


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
def test_unknown_spec_and_backend_rejected():
    with pytest.raises(InvalidParameterError):
        build("no_such_sketch", size=8)
    with pytest.raises(InvalidParameterError):
        build("unbiased_space_saving", size=8, backend="quantum")


def test_inline_rejects_scale_out_arguments():
    with pytest.raises(InvalidParameterError):
        build("unbiased_space_saving", size=8, num_shards=4)
    with pytest.raises(InvalidParameterError):
        build("unbiased_space_saving", size=8, num_workers=2)


def test_unknown_spec_parameters_rejected():
    with pytest.raises(InvalidParameterError, match="depht"):
        build("countmin", size=32, depht=3)


def test_scale_out_backend_requires_capability():
    for name in ("misra_gries", "countmin", "bottom_k"):
        with pytest.raises(CapabilityError):
            build(name, size=16, backend="sharded", num_shards=2)


def test_spec_parameters_apply_inline():
    session = build("countmin", size=32, depth=6, seed=0)
    assert session.estimator.depth == 6
    heap_session = build("unbiased_space_saving", size=8, store="heap", seed=0)
    assert "heap" in repr(heap_session.estimator)


# ----------------------------------------------------------------------
# Query engine integration
# ----------------------------------------------------------------------
def test_query_engine_accepts_sessions(batch_workload):
    session = build("unbiased_space_saving", size=CAPACITY, seed=SEED)
    session.update_batch(batch_workload)
    engine_on_session = SketchQueryEngine(session)
    engine_on_sketch = SketchQueryEngine(session.estimator)
    predicate = lambda item: item % 2 == 0  # noqa: E731
    assert (
        engine_on_session.select_sum(where=predicate).with_error
        == engine_on_sketch.select_sum(where=predicate).with_error
    )


def test_query_engine_candidates_path():
    session = build("count_sketch", size=128, track_keys=0, seed=1)
    session.update_batch(["x"] * 40 + ["y"] * 10)
    engine = SketchQueryEngine(session.estimator, candidates=["x", "y"])
    result = engine.select_sum(where=lambda item: item == "x")
    assert result.value == pytest.approx(40.0, abs=15.0)
