"""Unit tests for the sampling substrates (HT, PPS, priority, bottom-k, reservoir, VarOpt)."""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest

from repro.errors import EmptySketchError, InvalidParameterError
from repro.sampling.bottom_k import BottomKSketch, stable_rank
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample
from repro.sampling.pps import (
    expected_sample_size,
    inclusion_probabilities,
    poisson_pps_sample,
    pps_threshold,
    splitting_pps_sample,
    systematic_pps_sample,
)
from repro.sampling.priority import PrioritySample, StreamingPrioritySampler
from repro.sampling.reservoir import ReservoirSampler, SingleItemReservoir
from repro.sampling.varopt import varopt_reduce, varopt_sample


class TestHorvitzThompson:
    def test_sampled_item_validation(self):
        with pytest.raises(InvalidParameterError):
            SampledItem("a", 1.0, 0.0)
        with pytest.raises(InvalidParameterError):
            SampledItem("a", -1.0, 0.5)

    def test_adjusted_value(self):
        assert SampledItem("a", 2.0, 0.5).adjusted_value == 4.0

    def test_subset_sum_and_total(self):
        sample = WeightedSample(
            [SampledItem("a", 10.0, 1.0), SampledItem("b", 2.0, 0.5)]
        )
        assert sample.total_estimate() == 14.0
        assert sample.subset_sum(lambda item: item == "b") == 4.0
        assert sample.estimate("a") == 10.0
        assert sample.estimate("missing") == 0.0

    def test_from_mappings_requires_all_probabilities(self):
        with pytest.raises(InvalidParameterError):
            WeightedSample.from_mappings({"a": 1.0}, {})

    def test_subset_sum_with_error_variance(self):
        sample = WeightedSample([SampledItem("a", 2.0, 0.5)])
        result = sample.subset_sum_with_error(lambda item: True)
        assert result.estimate == 4.0
        assert result.variance == pytest.approx(2.0**2 * 0.5 / 0.25)

    def test_effective_sample_size(self):
        equal = WeightedSample(
            [SampledItem("a", 5.0, 1.0), SampledItem("b", 5.0, 1.0)]
        )
        assert equal.effective_sample_size() == pytest.approx(2.0)
        skewed = WeightedSample(
            [SampledItem("a", 100.0, 1.0), SampledItem("b", 1.0, 1.0)]
        )
        assert skewed.effective_sample_size() < 2.0


class TestPPS:
    def test_threshold_expected_size(self):
        weights = {f"i{k}": float(k + 1) for k in range(50)}
        probabilities = inclusion_probabilities(weights, 10)
        assert expected_sample_size(probabilities) == pytest.approx(10.0)

    def test_all_items_certain_when_budget_large(self):
        weights = {"a": 1.0, "b": 2.0}
        assert pps_threshold(weights, 5) == 0.0
        assert inclusion_probabilities(weights, 5) == {"a": 1.0, "b": 1.0}

    def test_paper_example_one_one_ten(self):
        """The §5.1 example: values 1, 1, 10 with k=2 caps the big item at 1."""
        weights = {"x": 1.0, "y": 1.0, "z": 10.0}
        probabilities = inclusion_probabilities(weights, 2)
        assert probabilities["z"] == 1.0
        assert probabilities["x"] == pytest.approx(0.5)
        assert expected_sample_size(probabilities) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            pps_threshold({}, 3)
        with pytest.raises(InvalidParameterError):
            pps_threshold({"a": -1.0}, 3)
        with pytest.raises(InvalidParameterError):
            pps_threshold({"a": 1.0}, 0)

    def test_poisson_sample_size_concentrates(self):
        weights = {f"i{k}": float((k % 10) + 1) for k in range(200)}
        sizes = [
            len(poisson_pps_sample(weights, 20, rng=random.Random(seed)))
            for seed in range(100)
        ]
        assert np.mean(sizes) == pytest.approx(20.0, abs=1.5)

    def test_splitting_sample_has_fixed_size(self):
        weights = {f"i{k}": float((k % 10) + 1) for k in range(100)}
        for seed in range(10):
            sample = splitting_pps_sample(weights, 15, rng=random.Random(seed))
            assert len(sample) == 15

    def test_splitting_sample_marginals(self):
        weights = {"a": 8.0, "b": 4.0, "c": 2.0, "d": 1.0, "e": 1.0}
        probabilities = inclusion_probabilities(weights, 2)
        hits = Counter()
        trials = 4000
        for seed in range(trials):
            sample = splitting_pps_sample(weights, 2, rng=random.Random(seed))
            for sampled in sample:
                hits[sampled.item] += 1
        for item, probability in probabilities.items():
            assert hits[item] / trials == pytest.approx(probability, abs=0.04)

    def test_systematic_sample_size_matches_budget(self):
        weights = {f"i{k}": float(k + 1) for k in range(60)}
        sample = systematic_pps_sample(weights, 12, rng=random.Random(0))
        assert len(sample) == 12

    def test_poisson_sample_total_unbiased(self):
        weights = {f"i{k}": float((k % 20) + 1) for k in range(100)}
        truth = sum(weights.values())
        totals = [
            poisson_pps_sample(weights, 25, rng=random.Random(seed)).total_estimate()
            for seed in range(300)
        ]
        assert np.mean(totals) == pytest.approx(truth, rel=0.05)


class TestPrioritySampling:
    def test_sample_size_and_membership(self):
        values = {f"i{k}": float(k + 1) for k in range(100)}
        sample = PrioritySample(values, 25, rng=random.Random(0))
        assert len(sample) == 25
        assert all(item in values for item in sample.estimates())

    def test_under_capacity_keeps_everything_exact(self):
        values = {"a": 3.0, "b": 7.0}
        sample = PrioritySample(values, 10, rng=random.Random(1))
        assert sample.threshold == 0.0
        assert sample.estimates() == values

    def test_validation(self):
        with pytest.raises(EmptySketchError):
            PrioritySample({}, 5)
        with pytest.raises(InvalidParameterError):
            PrioritySample({"a": 1.0}, 0)
        with pytest.raises(InvalidParameterError):
            PrioritySample({"a": -1.0}, 1)

    def test_adjusted_values_at_least_threshold(self):
        values = {f"i{k}": float((k % 10) + 1) for k in range(80)}
        sample = PrioritySample(values, 20, rng=random.Random(2))
        for item in sample.estimates():
            assert sample.adjusted_value(item) >= sample.threshold - 1e-9

    def test_subset_sum_unbiased(self):
        values = {f"i{k}": float((k % 15) + 1) for k in range(90)}
        subset = {f"i{k}" for k in range(0, 90, 3)}
        truth = sum(values[item] for item in subset)
        estimates = [
            PrioritySample(values, 30, rng=random.Random(seed)).subset_sum(
                lambda item: item in subset
            )
            for seed in range(400)
        ]
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) <= 4 * standard_error + 1.0

    def test_pseudo_inclusion_probabilities(self):
        values = {"big": 100.0, "small": 1.0}
        sample = PrioritySample(values, 1, rng=random.Random(3))
        assert sample.pseudo_inclusion_probability("big") >= sample.pseudo_inclusion_probability("small")
        assert sample.pseudo_inclusion_probability("missing") == 0.0

    def test_streaming_matches_batch_semantics(self):
        values = {f"i{k}": float((k % 10) + 1) for k in range(200)}
        sampler = StreamingPrioritySampler(30, rng=random.Random(4))
        sampler.extend(values.items())
        sample = sampler.result()
        assert len(sample.items()) == 30
        totals = []
        for seed in range(200):
            sampler = StreamingPrioritySampler(30, rng=random.Random(seed))
            sampler.extend(values.items())
            totals.append(sampler.result().total_estimate())
        assert np.mean(totals) == pytest.approx(sum(values.values()), rel=0.05)

    def test_streaming_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamingPrioritySampler(0)
        sampler = StreamingPrioritySampler(2)
        with pytest.raises(InvalidParameterError):
            sampler.offer("a", -1.0)
        assert len(StreamingPrioritySampler(3).result().items()) == 0


class TestBottomK:
    def test_stable_rank_deterministic_and_in_range(self):
        first = stable_rank("item", 7)
        second = stable_rank("item", 7)
        other_seed = stable_rank("item", 8)
        assert first == second
        assert 0.0 < first < 1.0
        assert first != other_seed

    def test_counts_exact_for_retained_items(self):
        rows = [f"i{k % 20}" for k in range(400)]
        sketch = BottomKSketch(capacity=8, seed=0)
        for row in rows:
            sketch.update(row)
        truth = Counter(rows)
        probability = sketch.inclusion_probability
        for item, estimate in sketch.estimates().items():
            assert estimate == pytest.approx(truth[item] / probability)

    def test_capacity_respected(self):
        sketch = BottomKSketch(capacity=10, seed=1)
        for row in range(500):
            sketch.update(row)
        assert len(sketch) == 10

    def test_inclusion_probability_one_while_under_capacity(self):
        sketch = BottomKSketch(capacity=10, seed=2)
        sketch.update("a")
        assert sketch.inclusion_probability == 1.0
        assert sketch.estimate("a") == 1.0

    def test_distinct_count_estimate_reasonable(self):
        sketch = BottomKSketch(capacity=64, seed=3)
        for row in range(2000):
            sketch.update(row)
        assert sketch.estimated_distinct_items() == pytest.approx(2000, rel=0.5)

    def test_subset_sum_unbiased_over_seeds(self):
        rows = []
        for index in range(60):
            rows.extend([f"i{index}"] * ((index % 5) + 1))
        truth = sum((index % 5) + 1 for index in range(0, 60, 2))
        estimates = []
        for seed in range(300):
            sketch = BottomKSketch(capacity=20, seed=seed)
            for row in rows:
                sketch.update(row)
            estimates.append(
                sketch.subset_sum(lambda item: int(item[1:]) % 2 == 0)
            )
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) <= 4 * standard_error + 2.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BottomKSketch(capacity=0)
        sketch = BottomKSketch(capacity=2, seed=0)
        with pytest.raises(InvalidParameterError):
            sketch.update("a", -1.0)


class TestReservoir:
    def test_single_item_reservoir_uniformity(self):
        hits = Counter()
        for seed in range(3000):
            reservoir = SingleItemReservoir(rng=random.Random(seed))
            for row in "abc":
                reservoir.offer(row)
            hits[reservoir.value] += 1
        for row in "abc":
            assert hits[row] / 3000 == pytest.approx(1 / 3, abs=0.05)

    def test_single_item_reservoir_tracks_offers(self):
        reservoir = SingleItemReservoir()
        assert reservoir.value is None
        reservoir.offer("x")
        assert reservoir.value == "x"
        assert reservoir.offers == 1

    def test_reservoir_sampler_size(self):
        sampler = ReservoirSampler(capacity=10, seed=0)
        sampler.extend(range(1000))
        assert len(sampler) == 10
        assert sampler.rows_processed == 1000

    def test_reservoir_inclusion_uniform(self):
        hits = Counter()
        trials = 2000
        for seed in range(trials):
            sampler = ReservoirSampler(capacity=2, seed=seed)
            sampler.extend(range(8))
            for row in sampler.sample():
                hits[row] += 1
        for row in range(8):
            assert hits[row] / trials == pytest.approx(2 / 8, abs=0.05)

    def test_item_estimates_and_subset_sum(self):
        sampler = ReservoirSampler(capacity=50, seed=1)
        rows = ["a"] * 60 + ["b"] * 40
        sampler.extend(rows)
        estimates = sampler.item_estimates()
        assert sum(estimates.values()) == pytest.approx(100.0)
        assert sampler.subset_sum(lambda item: item == "a") > 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ReservoirSampler(capacity=0)


class TestVarOpt:
    def test_under_capacity_exact(self):
        weights = {"a": 1.0, "b": 2.0}
        sample = varopt_sample(weights, 5, rng=random.Random(0))
        assert sample.estimates() == weights

    def test_fixed_size(self):
        weights = {f"i{k}": float((k % 7) + 1) for k in range(50)}
        for seed in range(10):
            reduced = varopt_reduce(weights, 12, rng=random.Random(seed))
            assert len(reduced) <= 12

    def test_total_preserved_in_expectation(self):
        weights = {f"i{k}": float((k % 9) + 1) for k in range(40)}
        truth = sum(weights.values())
        totals = [
            sum(varopt_reduce(weights, 10, rng=random.Random(seed)).values())
            for seed in range(300)
        ]
        assert np.mean(totals) == pytest.approx(truth, rel=0.05)

    def test_large_items_kept_exactly(self):
        weights = {"huge": 1000.0}
        weights.update({f"s{k}": 1.0 for k in range(30)})
        reduced = varopt_reduce(weights, 5, rng=random.Random(1))
        assert reduced["huge"] == 1000.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            varopt_sample({"a": 1.0}, 0)
