"""Unit tests for the Unbiased Space Saving sketch."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError, UnsupportedUpdateError


class TestConstruction:
    def test_requires_positive_capacity(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedSpaceSaving(0)

    def test_unknown_store_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedSpaceSaving(5, store="bogus")

    def test_from_bins_roundtrip(self):
        sketch = UnbiasedSpaceSaving.from_bins(
            4, {"a": 3.0, "b": 1.5}, rows_processed=10, total_weight=4.5, seed=0
        )
        assert sketch.estimate("a") == 3.0
        assert sketch.estimate("b") == 1.5
        assert sketch.rows_processed == 10
        assert sketch.total_weight == 4.5

    def test_from_bins_rejects_too_many_bins(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedSpaceSaving.from_bins(1, {"a": 1.0, "b": 2.0})

    def test_from_bins_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedSpaceSaving.from_bins(3, {"a": -1.0})


class TestExactRegime:
    def test_exact_counts_under_capacity(self):
        sketch = UnbiasedSpaceSaving(capacity=10, seed=0)
        sketch.extend(["a"] * 4 + ["b"] * 2 + ["c"])
        assert sketch.estimate("a") == 4
        assert sketch.estimate("b") == 2
        assert sketch.estimate("c") == 1
        assert sketch.min_count == 0.0
        assert not sketch.is_saturated()

    def test_estimate_zero_for_unknown(self):
        sketch = UnbiasedSpaceSaving(capacity=3, seed=0)
        sketch.update("a")
        assert sketch.estimate("zzz") == 0.0


class TestOverflowBehaviour:
    def test_capacity_never_exceeded(self):
        sketch = UnbiasedSpaceSaving(capacity=7, seed=1)
        sketch.extend(range(500))
        assert len(sketch) == 7
        assert sketch.is_saturated()

    def test_total_is_always_exact(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=2)
        rows = ["a"] * 20 + list(range(100))
        sketch.extend(rows)
        assert sketch.total_estimate() == pytest.approx(len(rows))

    def test_counter_increment_happens_even_without_relabel(self):
        # With 1 bin every new item increments the single counter.
        sketch = UnbiasedSpaceSaving(capacity=1, seed=3)
        sketch.extend(range(50))
        assert sketch.total_estimate() == 50.0
        assert len(sketch) == 1

    def test_label_replacements_counted(self):
        sketch = UnbiasedSpaceSaving(capacity=2, seed=4)
        sketch.extend(range(200))
        assert 0 < sketch.label_replacements <= 200


class TestUnbiasedness:
    def test_point_estimate_unbiased_over_replications(self):
        """Theorem 1: E[N̂_x] equals the true count, here for a mid-tail item."""
        rows = []
        for index in range(30):
            rows.extend([f"tail{index}"] * 3)
        rows.extend(["target"] * 6)
        truth = 6.0
        estimates = []
        for seed in range(400):
            rng = np.random.default_rng(seed)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            sketch = UnbiasedSpaceSaving(capacity=8, seed=seed)
            sketch.extend(shuffled)
            estimates.append(sketch.estimate("target"))
        mean_estimate = float(np.mean(estimates))
        standard_error = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean_estimate - truth) <= 4 * standard_error + 0.5

    def test_subset_sum_unbiased_over_replications(self):
        rows = [f"i{k}" for k in range(60) for _ in range(k % 5 + 1)]
        subset = {f"i{k}" for k in range(0, 60, 7)}
        truth = sum(k % 5 + 1 for k in range(0, 60, 7))
        estimates = []
        for seed in range(300):
            rng = np.random.default_rng(seed + 1000)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            sketch = UnbiasedSpaceSaving(capacity=15, seed=seed)
            sketch.extend(shuffled)
            estimates.append(sketch.subset_sum(lambda item: item in subset))
        mean_estimate = float(np.mean(estimates))
        standard_error = float(np.std(estimates) / np.sqrt(len(estimates)))
        assert abs(mean_estimate - truth) <= 4 * standard_error + 1.0


class TestFrequentItems:
    def test_frequent_item_retained_with_near_exact_count(self, small_stream, small_skewed_model):
        sketch = UnbiasedSpaceSaving(capacity=40, seed=5)
        sketch.extend(small_stream)
        top_item, top_count = small_skewed_model.sorted_items()[0]
        assert top_item in sketch.estimates()
        assert sketch.estimate(top_item) == pytest.approx(top_count, rel=0.15)

    def test_heavy_hitters_report(self):
        rows = ["hot"] * 400 + [f"c{i}" for i in range(200)]
        sketch = UnbiasedSpaceSaving(capacity=20, seed=6)
        sketch.extend(rows)
        hitters = sketch.heavy_hitters(0.5)
        assert set(hitters) == {"hot"}

    def test_top_k_sorted_by_estimate(self):
        sketch = UnbiasedSpaceSaving(capacity=10, seed=7)
        sketch.extend(["a"] * 5 + ["b"] * 3 + ["c"])
        top = sketch.top_k(2)
        assert [item for item, _ in top] == ["a", "b"]

    def test_top_k_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedSpaceSaving(capacity=2).top_k(-1)


class TestVarianceAndConfidence:
    def test_subset_sum_with_error_exact_regime_zero_variance(self):
        sketch = UnbiasedSpaceSaving(capacity=10, seed=8)
        sketch.extend(["a"] * 4 + ["b"])
        result = sketch.subset_sum_with_error(lambda item: item == "a")
        assert result.estimate == 4.0
        assert result.variance == 0.0

    def test_variance_positive_when_saturated(self):
        sketch = UnbiasedSpaceSaving(capacity=4, seed=9)
        sketch.extend(range(100))
        result = sketch.subset_sum_with_error(lambda item: True)
        assert result.variance > 0

    def test_confidence_interval_contains_estimate(self):
        sketch = UnbiasedSpaceSaving(capacity=4, seed=10)
        sketch.extend(range(100))
        predicate = lambda item: item < 50  # noqa: E731 - concise test predicate
        low, high = sketch.subset_sum_confidence_interval(predicate)
        estimate = sketch.subset_sum(predicate)
        assert low <= estimate <= high

    def test_approximate_inclusion_probability(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=11)
        sketch.extend(range(200))
        assert sketch.approximate_inclusion_probability(0) == 0.0
        assert sketch.approximate_inclusion_probability(sketch.min_count * 2) == 1.0
        with pytest.raises(InvalidParameterError):
            sketch.approximate_inclusion_probability(-1)


class TestWeightedUpdates:
    def test_zero_or_negative_weight_rejected(self):
        sketch = UnbiasedSpaceSaving(capacity=2)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 0)
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", -1.0)

    def test_integer_weights_accumulate_exactly(self):
        sketch = UnbiasedSpaceSaving(capacity=4, seed=12)
        sketch.update("a", 3)
        sketch.update("a", 2)
        assert sketch.estimate("a") == 5.0

    def test_auto_store_migrates_for_float_weights(self):
        sketch = UnbiasedSpaceSaving(capacity=4, seed=13)
        sketch.update("a", 2)
        sketch.update("b", 1.5)
        assert sketch.estimate("a") == 2.0
        assert sketch.estimate("b") == pytest.approx(1.5)
        assert sketch.total_estimate() == pytest.approx(3.5)

    def test_stream_summary_store_rejects_float_weights(self):
        sketch = UnbiasedSpaceSaving(capacity=4, store="stream_summary")
        with pytest.raises(UnsupportedUpdateError):
            sketch.update("a", 0.5)

    def test_weighted_total_preserved_when_saturated(self):
        sketch = UnbiasedSpaceSaving(capacity=3, seed=14, store="heap")
        total = 0.0
        rng = np.random.default_rng(0)
        for index in range(100):
            weight = float(rng.uniform(0.1, 2.0))
            sketch.update(f"item{index}", weight)
            total += weight
        assert sketch.total_estimate() == pytest.approx(total)

    def test_extend_accepts_weighted_pairs(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=15)
        sketch.extend([("a", 2), ("b", 3)])
        assert sketch.estimate("a") == 2.0
        assert sketch.estimate("b") == 3.0

    def test_extend_keeps_tuple_items_as_keys(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=16)
        sketch.extend([("user1", "ad1"), ("user1", "ad1"), ("user2", "ad2")])
        assert sketch.estimate(("user1", "ad1")) == 2.0


class TestDeterministicComparison:
    def test_uss_and_dss_identical_while_under_capacity(self):
        from repro.core.deterministic_space_saving import DeterministicSpaceSaving

        rows = ["a", "b", "a", "c", "a", "b"]
        unbiased = UnbiasedSpaceSaving(capacity=10, seed=17).extend(rows)
        deterministic = DeterministicSpaceSaving(capacity=10, seed=17)
        deterministic.extend(rows)
        assert unbiased.estimates() == deterministic.estimates()

    def test_relative_frequencies_sum_to_one_when_saturated(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=18)
        sketch.extend(range(100))
        assert sum(sketch.relative_frequencies().values()) == pytest.approx(1.0)
