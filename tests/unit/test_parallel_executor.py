"""ParallelSketchExecutor: multiprocess sharding matches in-process sharding.

The executor's contract is that process boundaries are invisible: on the
same seeded workload its per-shard states — and therefore every query —
are *equal* to ``ShardedSketch``'s, whether the batches ran through a
real worker pool or the inline fallback.  These tests pin that down,
plus the executor's own serialization/checkpointing and pool lifecycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.parallel import ParallelSketchExecutor, _apply_serialized_batch
from repro.distributed.sharded import ShardedSketch
from repro.errors import InvalidParameterError
from repro.io import load_bytes

SEED = 20180618
CAPACITY = 24
NUM_SHARDS = 4


@pytest.fixture
def chunks(batch_workload):
    array = np.asarray(batch_workload, dtype=np.int64)
    return [array[start : start + 2000] for start in range(0, len(array), 2000)]


@pytest.fixture
def sharded(chunks):
    reference = ShardedSketch(CAPACITY, NUM_SHARDS, seed=SEED)
    for chunk in chunks:
        reference.update_batch(chunk)
    return reference


def _fill(executor, chunks):
    for chunk in chunks:
        executor.update_batch(chunk)
    return executor


class TestMatchesShardedSketch:
    def test_inline_executor_matches(self, chunks, sharded):
        executor = _fill(
            ParallelSketchExecutor(CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0),
            chunks,
        )
        assert executor.estimates() == sharded.estimates()
        assert executor.rows_processed == sharded.rows_processed
        assert executor.total_weight == sharded.total_weight

    def test_pooled_executor_matches(self, chunks, sharded):
        with ParallelSketchExecutor(
            CAPACITY, NUM_SHARDS, seed=SEED, num_workers=2
        ) as executor:
            _fill(executor, chunks)
            assert executor.estimates() == sharded.estimates()
            assert executor.total_estimate() == sharded.total_estimate()
            assert executor.top_k(10) == sharded.top_k(10)
            assert executor.heavy_hitters(0.01) == sharded.heavy_hitters(0.01)

    def test_merged_matches(self, chunks, sharded):
        executor = _fill(
            ParallelSketchExecutor(CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0),
            chunks,
        )
        assert executor.merged().estimates() == sharded.merged().estimates()
        assert (
            executor.merged(capacity=12).estimates()
            == sharded.merged(capacity=12).estimates()
        )

    def test_subset_queries_match(self, chunks, sharded):
        executor = _fill(
            ParallelSketchExecutor(CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0),
            chunks,
        )
        predicate = lambda item: int(item) % 5 == 0  # noqa: E731
        assert executor.subset_sum(predicate) == sharded.subset_sum(predicate)
        ours = executor.subset_sum_with_error(predicate)
        theirs = sharded.subset_sum_with_error(predicate)
        assert ours.estimate == theirs.estimate
        assert ours.variance == theirs.variance

    def test_scalar_updates_route_identically(self, sharded, batch_workload):
        executor = ParallelSketchExecutor(
            CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0
        )
        for item in batch_workload[:500]:
            executor.update(item)
        reference = ShardedSketch(CAPACITY, NUM_SHARDS, seed=SEED)
        for item in batch_workload[:500]:
            reference.update(item)
        assert executor.estimates() == reference.estimates()
        assert executor.shard_index(batch_workload[0]) == reference.shard_index(
            batch_workload[0]
        )


class TestExecutorMechanics:
    def test_worker_round_trips_state(self):
        from repro.core.unbiased_space_saving import UnbiasedSpaceSaving

        sketch = UnbiasedSpaceSaving(8, seed=3)
        state = sketch.to_bytes()
        new_state = _apply_serialized_batch(state, ["a", "b"], [2.0, 1.0], 2, 3.0)
        updated = UnbiasedSpaceSaving.from_bytes(new_state)
        assert updated.estimate("a") == 2.0
        assert updated.total_weight == 3.0
        # The driver-side frame is untouched (states are immutable bytes).
        assert UnbiasedSpaceSaving.from_bytes(state).total_weight == 0.0

    def test_empty_batch_is_a_noop(self):
        executor = ParallelSketchExecutor(8, 2, seed=0, num_workers=0)
        executor.update_batch([])
        assert executor.rows_processed == 0
        assert len(executor) == 0

    def test_untouched_shards_keep_their_frames(self):
        executor = ParallelSketchExecutor(8, 2, seed=0, num_workers=0)
        before = executor.shard_states()
        target = "x"
        index = executor.shard_index(target)
        executor.update_batch([target] * 10)
        after = executor.shard_states()
        assert after[index] != before[index]
        assert after[1 - index] == before[1 - index]

    def test_invalid_configuration(self):
        with pytest.raises(InvalidParameterError):
            ParallelSketchExecutor(8, 0)
        with pytest.raises(InvalidParameterError):
            ParallelSketchExecutor(8, 2, seed=0, num_workers=0).top_k(-1)

    def test_close_is_idempotent_and_leaves_queries_working(self, chunks):
        executor = ParallelSketchExecutor(
            CAPACITY, NUM_SHARDS, seed=SEED, num_workers=2
        )
        _fill(executor, chunks[:2])
        estimates = executor.estimates()
        executor.close()
        executor.close()
        assert executor.estimates() == estimates
        # Ingestion after close lazily recreates the pool.
        executor.update_batch(chunks[2])
        executor.close()

    def test_query_cache_invalidates_on_update(self):
        executor = ParallelSketchExecutor(8, 2, seed=0, num_workers=0)
        executor.update_batch(["a"] * 5)
        assert executor.estimate("a") == 5.0
        executor.update_batch(["a"] * 5)
        assert executor.estimate("a") == 10.0


class TestExecutorSerialization:
    def test_round_trip_preserves_queries(self, chunks, sharded):
        executor = _fill(
            ParallelSketchExecutor(CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0),
            chunks,
        )
        restored = ParallelSketchExecutor.from_bytes(executor.to_bytes())
        assert restored.estimates() == executor.estimates()
        assert restored.rows_processed == executor.rows_processed
        dispatched = load_bytes(executor.to_bytes())
        assert type(dispatched) is ParallelSketchExecutor
        assert dispatched.estimates() == executor.estimates()

    def test_checkpoint_restore_continues_identically(self, tmp_path, chunks, sharded):
        half = len(chunks) // 2
        executor = _fill(
            ParallelSketchExecutor(CAPACITY, NUM_SHARDS, seed=SEED, num_workers=0),
            chunks[:half],
        )
        checkpoint = tmp_path / "executor.ckpt"
        executor.save_checkpoint(checkpoint)
        restored = ParallelSketchExecutor.load_checkpoint(checkpoint)
        _fill(restored, chunks[half:])
        assert restored.estimates() == sharded.estimates()
        assert restored.rows_processed == sharded.rows_processed
