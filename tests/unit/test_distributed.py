"""Unit tests for partitioning and the simulated map-reduce pipeline."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.mapreduce import (
    DistributedSubsetSum,
    reduce_sketches,
    sketch_partitions,
    tree_merge,
)
from repro.distributed.partition import (
    hash_partition,
    key_range_partition,
    round_robin_partition,
)
from repro.errors import InvalidParameterError


class TestPartitioning:
    def test_hash_partition_routes_items_consistently(self):
        rows = [f"i{k % 20}" for k in range(200)]
        partitions = hash_partition(rows, 4, seed=0)
        assert sum(len(partition) for partition in partitions) == 200
        # All rows of a given item land in exactly one partition.
        for item in set(rows):
            containing = [p for p in partitions if item in p]
            assert len(containing) == 1

    def test_round_robin_partition_balanced(self):
        partitions = round_robin_partition(range(100), 4)
        assert [len(partition) for partition in partitions] == [25, 25, 25, 25]

    def test_key_range_partition_sorted_blocks(self):
        partitions = key_range_partition(list(range(100)), 4, key=lambda row: row)
        assert partitions[0] == list(range(25))
        assert partitions[-1][-1] == 99

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            hash_partition([], 0)
        with pytest.raises(InvalidParameterError):
            round_robin_partition([], 0)
        with pytest.raises(InvalidParameterError):
            key_range_partition([], 0)


class TestMapReduce:
    def test_sketch_partitions_builds_one_sketch_each(self):
        partitions = [["a", "a"], ["b"], ["c", "c", "c"]]
        sketches = sketch_partitions(partitions, capacity=4, seed=0)
        assert len(sketches) == 3
        assert sketches[0].estimate("a") == 2.0
        assert sketches[2].rows_processed == 3

    def test_sketch_partitions_requires_partitions(self):
        with pytest.raises(InvalidParameterError):
            sketch_partitions([], capacity=4)

    def test_reduce_preserves_rows_and_totals(self):
        partitions = round_robin_partition(range(300), 3)
        sketches = sketch_partitions(partitions, capacity=20, seed=1)
        merged = reduce_sketches(sketches, seed=1)
        assert merged.rows_processed == 300
        assert merged.total_weight == 300.0
        assert len(merged) <= 20

    def test_tree_merge_handles_odd_counts(self):
        partitions = round_robin_partition(range(250), 5)
        sketches = sketch_partitions(partitions, capacity=15, seed=2)
        merged = tree_merge(sketches, seed=2)
        assert merged.rows_processed == 250
        with pytest.raises(InvalidParameterError):
            tree_merge([])

    def test_single_sketch_tree_merge_is_identity(self):
        sketch = UnbiasedSpaceSaving(capacity=8, seed=0)
        sketch.extend(range(20))
        assert tree_merge([sketch]) is sketch

    def test_distributed_pipeline_end_to_end(self):
        pipeline = DistributedSubsetSum(capacity=32, num_partitions=4, seed=0)
        rows = [f"i{k % 50}" for k in range(1000)]
        merged = pipeline.run(rows)
        assert merged.rows_processed == 1000
        truth = Counter(rows)
        estimate = pipeline.subset_sum(lambda item: item in {"i0", "i1", "i2"})
        exact = truth["i0"] + truth["i1"] + truth["i2"]
        assert estimate == pytest.approx(exact, rel=0.6)
        with_error = pipeline.subset_sum_with_error(lambda item: True)
        assert with_error.estimate == pytest.approx(1000.0, rel=0.05)

    def test_distributed_pipeline_tree_strategy(self):
        pipeline = DistributedSubsetSum(
            capacity=16, num_partitions=3, merge_strategy="tree", seed=1
        )
        merged = pipeline.run(range(200))
        assert merged.rows_processed == 200

    def test_pipeline_validation(self):
        with pytest.raises(InvalidParameterError):
            DistributedSubsetSum(capacity=8, num_partitions=0)
        with pytest.raises(InvalidParameterError):
            DistributedSubsetSum(capacity=8, num_partitions=2, merge_strategy="bogus")
        pipeline = DistributedSubsetSum(capacity=8, num_partitions=2)
        with pytest.raises(InvalidParameterError):
            _ = pipeline.merged_sketch

    def test_distributed_estimates_unbiased_in_expectation(self):
        rows = []
        for index in range(40):
            rows.extend([f"i{index}"] * ((index % 4) + 1))
        subset = {f"i{index}" for index in range(0, 40, 3)}
        truth = sum((index % 4) + 1 for index in range(0, 40, 3))
        estimates = []
        for seed in range(200):
            rng = np.random.default_rng(seed)
            shuffled = list(rng.permutation(np.array(rows, dtype=object)))
            pipeline = DistributedSubsetSum(capacity=12, num_partitions=3, seed=seed)
            pipeline.run(shuffled)
            estimates.append(pipeline.subset_sum(lambda item: item in subset))
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) <= 4 * standard_error + 1.0
