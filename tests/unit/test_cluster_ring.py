"""Unit tests for the cluster tier's pure parts.

The consistent-hash ring (stability, determinism, balance, preference
order), the membership/liveness layer above it — including live
membership change (epochs, add/remove, ``ring_delta``) — the
shard-session math (scatter partitioning, the unbiased gather-merge,
ranking), the per-slot migration gates, and the ``join``/``decommission``
wire-op request validation.  All pure functions or in-process asyncio;
no sockets.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    ClusterMembership,
    ClusterRouter,
    HashRing,
    Member,
    SessionRoute,
    merge_shard_states,
    ranked_pairs,
    ring_delta,
    scatter_batch,
)
from repro.distributed.partition import stable_shard
from repro.errors import ClusterError, InvalidParameterError

KEYS = [("default", f"session-{i}") for i in range(10_000)]


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_owner_is_deterministic_across_rebuilds(self):
        """Routing must survive router restarts: same inputs, same ring."""
        ring_a = HashRing(["m0", "m1", "m2"], seed=7)
        ring_b = HashRing(["m2", "m0", "m1"], seed=7)  # order must not matter
        assert [ring_a.owner(key) for key in KEYS[:500]] == [
            ring_b.owner(key) for key in KEYS[:500]
        ]

    def test_different_seed_routes_differently(self):
        ring_a = HashRing(["m0", "m1", "m2"], seed=0)
        ring_b = HashRing(["m0", "m1", "m2"], seed=1)
        assert any(
            ring_a.owner(key) != ring_b.owner(key) for key in KEYS[:200]
        )

    def test_adding_a_member_moves_few_keys_and_only_to_it(self):
        """Consistent hashing's whole point: growth moves ≈ K/(N+1) keys."""
        before = HashRing(["m0", "m1", "m2", "m3"])
        after = HashRing(["m0", "m1", "m2", "m3", "m4"])
        moved = [
            key for key in KEYS if before.owner(key) != after.owner(key)
        ]
        # Expectation is K/5 = 2000; allow generous slack for hash noise.
        assert len(moved) <= 0.35 * len(KEYS)
        # Every moved key moved TO the new member, never between old ones.
        assert all(after.owner(key) == "m4" for key in moved)

    def test_removing_a_member_moves_only_its_keys(self):
        before = HashRing(["m0", "m1", "m2", "m3", "m4"])
        after = HashRing(["m0", "m1", "m2", "m3"])
        for key in KEYS[:2000]:
            if before.owner(key) != "m4":
                assert after.owner(key) == before.owner(key)

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["m0", "m1", "m2", "m3"])
        counts = {member: 0 for member in ring.members}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        share = 1 / len(counts)
        for member, count in counts.items():
            assert 0.5 * share <= count / len(KEYS) <= 1.7 * share, (
                member,
                counts,
            )

    def test_preference_starts_at_owner_and_covers_all_members(self):
        ring = HashRing(["m0", "m1", "m2"])
        for key in KEYS[:100]:
            order = ring.preference(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == ["m0", "m1", "m2"]
        assert len(ring.preference(KEYS[0], n=2)) == 2

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])
        with pytest.raises(InvalidParameterError):
            HashRing(["m0"], replicas=0)


# ----------------------------------------------------------------------
# ClusterMembership
# ----------------------------------------------------------------------
class TestClusterMembership:
    def _membership(self):
        return ClusterMembership(
            [("m0", "127.0.0.1", 1), ("m1", "127.0.0.1", 2), ("m2", "127.0.0.1", 3)]
        )

    def test_route_skips_members_marked_down(self):
        membership = self._membership()
        key = ("default", "clicks")
        first = membership.route(key).member_id
        membership.mark_down(first)
        second = membership.route(key).member_id
        assert second != first
        # Succession follows ring preference order exactly.
        preference = membership.ring.preference(key)
        assert second == next(m for m in preference if m != first)
        # Recovery restores the original owner.
        membership.mark_up(first)
        assert membership.route(key).member_id == first

    def test_all_members_down_raises(self):
        membership = self._membership()
        for member in membership.members():
            membership.mark_down(member.member_id)
        with pytest.raises(ClusterError):
            membership.route(("default", "clicks"))

    def test_duplicate_member_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            ClusterMembership([("m0", "h", 1), ("m0", "h", 2)])

    def test_accepts_member_objects(self):
        membership = ClusterMembership([Member("m0", "127.0.0.1", 9)])
        assert membership.get("m0").port == 9
        with pytest.raises(ClusterError):
            membership.get("nope")


# ----------------------------------------------------------------------
# Scatter / gather math
# ----------------------------------------------------------------------
class TestScatterBatch:
    def test_partition_matches_stable_shard_and_keeps_order(self):
        items = [f"ad{i % 17}" for i in range(300)]
        weights = [float(i) for i in range(300)]
        ts = [0.5 * i for i in range(300)]
        slices = scatter_batch(items, weights, ts, 4, seed=3)
        rebuilt = []
        for shard, (s_items, s_weights, s_ts) in enumerate(slices):
            assert len(s_items) == len(s_weights) == len(s_ts)
            for item in s_items:
                assert stable_shard(item, 4, seed=3) == shard
            rebuilt.extend(zip(s_items, s_weights, s_ts))
        # No row lost or duplicated; within-shard order preserved by zip
        # alignment (weights/timestamps still attached to their item).
        assert sorted(rebuilt, key=lambda row: row[1]) == list(
            zip(items, weights, ts)
        )

    def test_optional_columns_stay_none(self):
        slices = scatter_batch(["a", "b"], None, None, 2)
        assert all(w is None and t is None for _, w, t in slices)

    def test_misaligned_columns_rejected(self):
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], [1.0, 2.0], None, 2)
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], None, [1.0, 2.0], 2)
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], None, None, 0)


class TestGatherMerge:
    def test_merge_is_exact_disjoint_union(self):
        """capacity = union size ⇒ the unbiased reduction is the identity."""
        shard_states = [
            ({"a": 5.0, "b": 3.0}, 8.0),
            ({"c": 2.5}, 2.5),
            ({}, 0.0),  # empty shard must not break the merge
        ]
        merged = merge_shard_states(shard_states)
        assert merged.estimates() == {"a": 5.0, "b": 3.0, "c": 2.5}
        assert merged.total_weight == 10.5

    def test_ranked_pairs_orders_like_the_query_layer(self):
        merged = merge_shard_states([({"b": 2.0, "a": 2.0, "c": 5.0}, 9.0)])
        assert ranked_pairs(merged) == [("c", 5.0), ("a", 2.0), ("b", 2.0)]
        assert ranked_pairs(merged, k=1) == [("c", 5.0)]
        assert ranked_pairs(merged, threshold=3.0) == [("c", 5.0)]

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            merge_shard_states([])


# ----------------------------------------------------------------------
# SessionRoute
# ----------------------------------------------------------------------
class TestSessionRoute:
    def test_single_route_has_one_slot(self):
        route = SessionRoute(tenant="t", name="s", members=["m0"])
        assert not route.sharded
        assert route.wire_name() == "s"
        assert route.shard_of("anything") == 0
        assert route.slots() == [(0, "s", "m0")]

    def test_sharded_route_names_and_hashing(self):
        route = SessionRoute(
            tenant="t", name="s", members=["m0", "m1", "m2"], shards=3, seed=5
        )
        assert [name for _, name, _ in route.slots()] == [
            "s@shard0",
            "s@shard1",
            "s@shard2",
        ]
        for item in ("a", "b", ("pair", 1), 42):
            assert route.shard_of(item) == stable_shard(item, 3, seed=5)
        assert route.ring_key(1) == ("t", "s@shard1")

    def test_slot_count_must_match_shards(self):
        with pytest.raises(InvalidParameterError):
            SessionRoute(tenant="t", name="s", members=["m0"], shards=2)
        with pytest.raises(InvalidParameterError):
            SessionRoute(tenant="t", name="s", members=["m0", "m1"])


# ----------------------------------------------------------------------
# Elastic membership: epochs, add/remove, ring_delta
# ----------------------------------------------------------------------
class TestMembershipElasticity:
    def _membership(self):
        return ClusterMembership(
            [("m0", "127.0.0.1", 1), ("m1", "127.0.0.1", 2), ("m2", "127.0.0.1", 3)]
        )

    def test_epoch_counts_membership_changes_only(self):
        """add/remove open a new ring generation; liveness flips do not."""
        membership = self._membership()
        assert membership.epoch == 0
        membership.mark_down("m1")
        membership.mark_up("m1")
        assert membership.epoch == 0  # liveness is within-generation
        membership.add_member(("m3", "127.0.0.1", 4))
        assert membership.epoch == 1
        membership.remove_member("m3")
        assert membership.epoch == 2

    def test_add_member_joins_healthy_and_owns_ring_arcs(self):
        membership = self._membership()
        membership.add_member(Member("m3", "127.0.0.1", 4))
        assert membership.get("m3").healthy
        owners = {membership.route(key).member_id for key in KEYS[:2000]}
        assert "m3" in owners  # the newcomer actually claims arcs

    def test_add_duplicate_member_rejected_without_epoch_bump(self):
        membership = self._membership()
        with pytest.raises(InvalidParameterError):
            membership.add_member(("m1", "127.0.0.1", 9))
        assert membership.epoch == 0

    def test_remove_member_hands_arcs_to_successors(self):
        membership = self._membership()
        before = {key: membership.route(key).member_id for key in KEYS[:1000]}
        membership.remove_member("m2")
        for key, old_owner in before.items():
            new_owner = membership.route(key).member_id
            assert new_owner != "m2"
            if old_owner != "m2":
                assert new_owner == old_owner  # survivors keep their keys

    def test_remove_guards(self):
        membership = ClusterMembership([("m0", "h", 1)])
        with pytest.raises(ClusterError):
            membership.remove_member("nope")  # unknown member
        with pytest.raises(ClusterError):
            membership.remove_member("m0")  # the last member

    def test_ring_delta_reports_exactly_the_moved_keys(self):
        before = HashRing(["m0", "m1", "m2"], seed=4)
        after = HashRing(["m0", "m1", "m2", "m3"], seed=4)
        sample = KEYS[:3000]
        delta = ring_delta(before, after, sample)
        assert delta  # a join always claims something at this sample size
        for key, (old_owner, new_owner) in delta.items():
            assert (old_owner, new_owner) == (before.owner(key), after.owner(key))
            assert new_owner == "m3"  # join movement only targets the joiner
        for key in sample:
            if key not in delta:
                assert before.owner(key) == after.owner(key)

    def test_ring_delta_of_identical_rings_is_empty(self):
        ring = HashRing(["m0", "m1"], seed=2)
        same = HashRing(["m1", "m0"], seed=2)  # order must not matter
        assert ring_delta(ring, same, KEYS[:500]) == {}


# ----------------------------------------------------------------------
# SessionRoute migration gates
# ----------------------------------------------------------------------
class TestSessionRouteGates:
    def _route(self):
        return SessionRoute(
            tenant="t", name="s", members=["m0", "m1", "m2"], shards=3
        )

    def test_pause_resume_cycle(self):
        route = self._route()
        assert not route.migrating(0)
        route.pause(0)
        assert route.migrating(0)
        assert not route.migrating(1)  # gates are per-slot
        route.resume(0)
        assert not route.migrating(0)

    def test_resume_without_pause_is_a_no_op(self):
        route = self._route()
        route.resume(1)
        assert not route.migrating(1)

    def test_wait_ready_parks_until_resume(self):
        async def scenario():
            route = self._route()
            route.pause(2)
            waiter = asyncio.ensure_future(route.wait_ready(2))
            await asyncio.sleep(0.01)
            assert not waiter.done()  # parked on the gate
            route.resume(2)
            await asyncio.wait_for(waiter, timeout=1.0)
            # Unpaused slots never block.
            await asyncio.wait_for(route.wait_ready(0), timeout=1.0)

        asyncio.run(scenario())

    def test_describe_exposes_epoch_and_migrating_slots(self):
        route = self._route()
        description = route.describe()
        assert description["epoch"] == 0
        assert description["migrating"] == []
        route.pause(1)
        route.epoch += 1
        description = route.describe()
        assert description["epoch"] == 1
        assert description["migrating"] == [1]


# ----------------------------------------------------------------------
# join / decommission wire-op request validation (no sockets: every
# rejection below happens before the router would touch the network)
# ----------------------------------------------------------------------
class TestJoinDecommissionValidation:
    def _router(self, n=3):
        return ClusterRouter(
            [(f"m{i}", "127.0.0.1", 40_000 + i) for i in range(n)]
        )

    def test_join_rejects_malformed_arguments(self):
        router = self._router()

        async def scenario():
            for member_id, host, port in [
                ("", "127.0.0.1", 4000),  # empty member id
                (None, "127.0.0.1", 4000),  # missing member id
                ("m9", "", 4000),  # empty host
                ("m9", "127.0.0.1", 0),  # port below the TCP range
                ("m9", "127.0.0.1", 65_536),  # port above the TCP range
                ("m9", "127.0.0.1", "4000"),  # stringly-typed port
                ("m9", "127.0.0.1", True),  # bool is not a port
            ]:
                with pytest.raises(InvalidParameterError):
                    await router.join(member_id, host, port)

        asyncio.run(scenario())
        assert router.membership.epoch == 0  # nothing entered the ring

    def test_op_join_coerces_json_float_ports(self):
        """JSON numbers may decode as floats; integral floats must pass
        port validation, non-integral ones must not."""
        router = self._router()

        async def scenario():
            # 70000.0 is integral ⇒ coerced to int ⇒ rejected as out of
            # range (not as a type error), proving the coercion ran.
            with pytest.raises(InvalidParameterError, match="70000"):
                await router._op_join(
                    {"member": "m9", "host": "h", "port": 70_000.0}
                )
            with pytest.raises(InvalidParameterError, match="4000.5"):
                await router._op_join(
                    {"member": "m9", "host": "h", "port": 4000.5}
                )

        asyncio.run(scenario())

    def test_op_decommission_requires_a_member_id(self):
        router = self._router()

        async def scenario():
            with pytest.raises(InvalidParameterError):
                await router._op_decommission({})
            with pytest.raises(InvalidParameterError):
                await router._op_decommission({"member": ""})

        asyncio.run(scenario())

    def test_decommission_rejects_unknown_and_down_members(self):
        router = self._router()

        async def scenario():
            with pytest.raises(ClusterError, match="unknown"):
                await router.decommission("ghost")
            router.membership.mark_down("m1")
            with pytest.raises(ClusterError, match="fail_over"):
                await router.decommission("m1")

        asyncio.run(scenario())

    def test_decommission_refuses_to_empty_the_ring(self):
        router = self._router(n=2)

        async def scenario():
            router.membership.mark_down("m1")
            with pytest.raises(ClusterError, match="no other healthy"):
                await router.decommission("m0")

        asyncio.run(scenario())

    def test_decommission_without_sessions_needs_no_shared_root(self):
        """Draining a member that hosts nothing is pure ring surgery —
        no frames move, so no shared checkpoint directory is needed."""
        router = self._router()

        async def scenario():
            return await router.decommission("m2")

        result = asyncio.run(scenario())
        assert result == {
            "decommissioned": True,
            "member": "m2",
            "sessions_moved": 0,
            "epoch": 1,
        }
        assert [m.member_id for m in router.membership.members()] == ["m0", "m1"]
