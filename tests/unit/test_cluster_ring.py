"""Unit tests for the cluster tier's pure parts.

The consistent-hash ring (stability, determinism, balance, preference
order), the membership/liveness layer above it, and the shard-session
math (scatter partitioning, the unbiased gather-merge, ranking) — all
pure functions, no sockets.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterMembership,
    HashRing,
    Member,
    SessionRoute,
    merge_shard_states,
    ranked_pairs,
    scatter_batch,
)
from repro.distributed.partition import stable_shard
from repro.errors import ClusterError, InvalidParameterError

KEYS = [("default", f"session-{i}") for i in range(10_000)]


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_owner_is_deterministic_across_rebuilds(self):
        """Routing must survive router restarts: same inputs, same ring."""
        ring_a = HashRing(["m0", "m1", "m2"], seed=7)
        ring_b = HashRing(["m2", "m0", "m1"], seed=7)  # order must not matter
        assert [ring_a.owner(key) for key in KEYS[:500]] == [
            ring_b.owner(key) for key in KEYS[:500]
        ]

    def test_different_seed_routes_differently(self):
        ring_a = HashRing(["m0", "m1", "m2"], seed=0)
        ring_b = HashRing(["m0", "m1", "m2"], seed=1)
        assert any(
            ring_a.owner(key) != ring_b.owner(key) for key in KEYS[:200]
        )

    def test_adding_a_member_moves_few_keys_and_only_to_it(self):
        """Consistent hashing's whole point: growth moves ≈ K/(N+1) keys."""
        before = HashRing(["m0", "m1", "m2", "m3"])
        after = HashRing(["m0", "m1", "m2", "m3", "m4"])
        moved = [
            key for key in KEYS if before.owner(key) != after.owner(key)
        ]
        # Expectation is K/5 = 2000; allow generous slack for hash noise.
        assert len(moved) <= 0.35 * len(KEYS)
        # Every moved key moved TO the new member, never between old ones.
        assert all(after.owner(key) == "m4" for key in moved)

    def test_removing_a_member_moves_only_its_keys(self):
        before = HashRing(["m0", "m1", "m2", "m3", "m4"])
        after = HashRing(["m0", "m1", "m2", "m3"])
        for key in KEYS[:2000]:
            if before.owner(key) != "m4":
                assert after.owner(key) == before.owner(key)

    def test_load_is_roughly_balanced(self):
        ring = HashRing(["m0", "m1", "m2", "m3"])
        counts = {member: 0 for member in ring.members}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        share = 1 / len(counts)
        for member, count in counts.items():
            assert 0.5 * share <= count / len(KEYS) <= 1.7 * share, (
                member,
                counts,
            )

    def test_preference_starts_at_owner_and_covers_all_members(self):
        ring = HashRing(["m0", "m1", "m2"])
        for key in KEYS[:100]:
            order = ring.preference(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == ["m0", "m1", "m2"]
        assert len(ring.preference(KEYS[0], n=2)) == 2

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            HashRing([])
        with pytest.raises(InvalidParameterError):
            HashRing(["m0"], replicas=0)


# ----------------------------------------------------------------------
# ClusterMembership
# ----------------------------------------------------------------------
class TestClusterMembership:
    def _membership(self):
        return ClusterMembership(
            [("m0", "127.0.0.1", 1), ("m1", "127.0.0.1", 2), ("m2", "127.0.0.1", 3)]
        )

    def test_route_skips_members_marked_down(self):
        membership = self._membership()
        key = ("default", "clicks")
        first = membership.route(key).member_id
        membership.mark_down(first)
        second = membership.route(key).member_id
        assert second != first
        # Succession follows ring preference order exactly.
        preference = membership.ring.preference(key)
        assert second == next(m for m in preference if m != first)
        # Recovery restores the original owner.
        membership.mark_up(first)
        assert membership.route(key).member_id == first

    def test_all_members_down_raises(self):
        membership = self._membership()
        for member in membership.members():
            membership.mark_down(member.member_id)
        with pytest.raises(ClusterError):
            membership.route(("default", "clicks"))

    def test_duplicate_member_ids_rejected(self):
        with pytest.raises(InvalidParameterError):
            ClusterMembership([("m0", "h", 1), ("m0", "h", 2)])

    def test_accepts_member_objects(self):
        membership = ClusterMembership([Member("m0", "127.0.0.1", 9)])
        assert membership.get("m0").port == 9
        with pytest.raises(ClusterError):
            membership.get("nope")


# ----------------------------------------------------------------------
# Scatter / gather math
# ----------------------------------------------------------------------
class TestScatterBatch:
    def test_partition_matches_stable_shard_and_keeps_order(self):
        items = [f"ad{i % 17}" for i in range(300)]
        weights = [float(i) for i in range(300)]
        ts = [0.5 * i for i in range(300)]
        slices = scatter_batch(items, weights, ts, 4, seed=3)
        rebuilt = []
        for shard, (s_items, s_weights, s_ts) in enumerate(slices):
            assert len(s_items) == len(s_weights) == len(s_ts)
            for item in s_items:
                assert stable_shard(item, 4, seed=3) == shard
            rebuilt.extend(zip(s_items, s_weights, s_ts))
        # No row lost or duplicated; within-shard order preserved by zip
        # alignment (weights/timestamps still attached to their item).
        assert sorted(rebuilt, key=lambda row: row[1]) == list(
            zip(items, weights, ts)
        )

    def test_optional_columns_stay_none(self):
        slices = scatter_batch(["a", "b"], None, None, 2)
        assert all(w is None and t is None for _, w, t in slices)

    def test_misaligned_columns_rejected(self):
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], [1.0, 2.0], None, 2)
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], None, [1.0, 2.0], 2)
        with pytest.raises(InvalidParameterError):
            scatter_batch(["a"], None, None, 0)


class TestGatherMerge:
    def test_merge_is_exact_disjoint_union(self):
        """capacity = union size ⇒ the unbiased reduction is the identity."""
        shard_states = [
            ({"a": 5.0, "b": 3.0}, 8.0),
            ({"c": 2.5}, 2.5),
            ({}, 0.0),  # empty shard must not break the merge
        ]
        merged = merge_shard_states(shard_states)
        assert merged.estimates() == {"a": 5.0, "b": 3.0, "c": 2.5}
        assert merged.total_weight == 10.5

    def test_ranked_pairs_orders_like_the_query_layer(self):
        merged = merge_shard_states([({"b": 2.0, "a": 2.0, "c": 5.0}, 9.0)])
        assert ranked_pairs(merged) == [("c", 5.0), ("a", 2.0), ("b", 2.0)]
        assert ranked_pairs(merged, k=1) == [("c", 5.0)]
        assert ranked_pairs(merged, threshold=3.0) == [("c", 5.0)]

    def test_empty_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            merge_shard_states([])


# ----------------------------------------------------------------------
# SessionRoute
# ----------------------------------------------------------------------
class TestSessionRoute:
    def test_single_route_has_one_slot(self):
        route = SessionRoute(tenant="t", name="s", members=["m0"])
        assert not route.sharded
        assert route.wire_name() == "s"
        assert route.shard_of("anything") == 0
        assert route.slots() == [(0, "s", "m0")]

    def test_sharded_route_names_and_hashing(self):
        route = SessionRoute(
            tenant="t", name="s", members=["m0", "m1", "m2"], shards=3, seed=5
        )
        assert [name for _, name, _ in route.slots()] == [
            "s@shard0",
            "s@shard1",
            "s@shard2",
        ]
        for item in ("a", "b", ("pair", 1), 42):
            assert route.shard_of(item) == stable_shard(item, 3, seed=5)
        assert route.ring_key(1) == ("t", "s@shard1")

    def test_slot_count_must_match_shards(self):
        with pytest.raises(InvalidParameterError):
            SessionRoute(tenant="t", name="s", members=["m0"], shards=2)
        with pytest.raises(InvalidParameterError):
            SessionRoute(tenant="t", name="s", members=["m0", "m1"])
