"""The docs gate, in tier-1: doctest every docs page, verify every link.

The CI ``docs`` job runs the same checks via ``tools/check_docs.py``;
running them here too means broken documentation fails locally before it
fails in CI.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_docs", check_docs)
_SPEC.loader.exec_module(check_docs)


def test_docs_tree_exists():
    pages = {path.relative_to(REPO_ROOT).as_posix() for path in check_docs.doc_pages()}
    for required in (
        "docs/README.md",
        "docs/architecture.md",
        "docs/operations.md",
        "docs/serve.md",
        "docs/windows.md",
        "docs/api/index.md",
        "docs/api/core.md",
        "docs/api/frequent.md",
        "docs/api/sampling.md",
        "docs/api/distributed.md",
        "docs/api/io.md",
        "docs/api/query.md",
    ):
        assert required in pages


def test_docs_doctests_pass():
    assert check_docs.run_doctests() == []


def test_docs_links_resolve():
    assert check_docs.check_links() == []


def test_docs_pages_reachable_from_index():
    assert check_docs.check_reachability() == []


def test_github_slugs():
    assert check_docs.github_slug("Batched ingestion: `update_batch`") == (
        "batched-ingestion-update_batch"
    )
    assert check_docs.github_slug("Merging (`repro.core.merge`)") == (
        "merging-reprocoremerge"
    )
