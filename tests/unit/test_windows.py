"""Unit tests for the repro.windows subsystem and its facade integration."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import CapabilityError, InvalidParameterError
from repro.io import load_bytes
from repro.windows import (
    DecayedWindowSketch,
    DecayPolicy,
    SlidingWindowPolicy,
    SlidingWindowSketch,
    TumblingWindowPolicy,
    TumblingWindowSketch,
    parse_duration,
    parse_window_policy,
)


# ----------------------------------------------------------------------
# Policy parsing
# ----------------------------------------------------------------------
class TestPolicyParsing:
    def test_durations(self):
        assert parse_duration("500ms") == 0.5
        assert parse_duration("90s") == 90.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("2h") == 7200.0
        assert parse_duration("1d") == 86400.0
        assert parse_duration(42) == 42.0
        with pytest.raises(InvalidParameterError):
            parse_duration("abc")
        with pytest.raises(InvalidParameterError):
            parse_duration(0)

    def test_policy_strings(self):
        assert parse_window_policy("tumbling:60s") == TumblingWindowPolicy(60.0)
        assert parse_window_policy("sliding:5m/30s") == SlidingWindowPolicy(300.0, 30.0)
        assert parse_window_policy("decay:exp:0.01") == DecayPolicy("exp", 0.01)
        assert parse_window_policy("decay:poly:2") == DecayPolicy("poly", 2.0)

    def test_tumbling_retain_rides_the_spec_string(self):
        policy = parse_window_policy("tumbling:1h*3")
        assert policy == TumblingWindowPolicy(3600.0, 3)
        assert policy.describe() == "tumbling:1h*3"
        sketch = TumblingWindowSketch(8, width="10s", retain=3)
        assert sketch.window_policy().describe() == "tumbling:10s*3"
        assert parse_window_policy(sketch.window_policy().describe()) == \
            sketch.window_policy()
        with pytest.raises(InvalidParameterError):
            parse_window_policy("tumbling:1h*x")
        with pytest.raises(InvalidParameterError):
            parse_window_policy("tumbling:1h*0")

    def test_policy_objects_pass_through(self):
        policy = SlidingWindowPolicy(120.0, 60.0)
        assert parse_window_policy(policy) is policy

    def test_describe_round_trips(self):
        # describe() canonicalizes durations to the largest exact unit;
        # parsing the description always reproduces the same policy.
        assert parse_window_policy("tumbling:60s").describe() == "tumbling:1m"
        assert parse_window_policy("sliding:300s/30s").describe() == "sliding:5m/30s"
        for spec in ("tumbling:60s", "sliding:5m/30s", "decay:exp:0.01", "decay:poly:2"):
            policy = parse_window_policy(spec)
            assert parse_window_policy(policy.describe()) == policy

    def test_invalid_specs_rejected(self):
        for bad in (
            "hopping:60s",
            "sliding:5m",          # no pane
            "sliding:50s/30s",     # horizon not a multiple of the pane
            "decay:exp",           # no rate
            "decay:linear:1",      # unknown kind
            "tumbling:nope",
            "window",
            123,
        ):
            with pytest.raises(InvalidParameterError):
                parse_window_policy(bad)

    def test_sliding_num_panes(self):
        assert SlidingWindowPolicy(300.0, 30.0).num_panes == 10
        assert SlidingWindowPolicy(60.0, 60.0).num_panes == 1


# ----------------------------------------------------------------------
# Pane ring mechanics
# ----------------------------------------------------------------------
class TestPaneRing:
    def test_rows_route_to_their_windows(self):
        sketch = SlidingWindowSketch(16, horizon="30s", pane="10s", seed=0)
        sketch.update("a", timestamp=5.0)
        sketch.update("b", timestamp=15.0)
        sketch.update("c", timestamp=25.0)
        assert [index for index, _ in sketch.window_panes()] == [0, 1, 2]
        assert sketch.estimates() == {"a": 1.0, "b": 1.0, "c": 1.0}
        assert sketch.window_bounds(1) == (10.0, 20.0)

    def test_rotation_expires_old_panes(self):
        sketch = SlidingWindowSketch(16, horizon="30s", pane="10s", seed=0)
        for ts in (5.0, 15.0, 25.0, 35.0):
            sketch.update("x", timestamp=ts)
        # Horizon covers windows 1..3; window 0 has expired.
        assert [index for index, _ in sketch.window_panes()] == [1, 2, 3]
        assert sketch.estimate("x") == 3.0
        assert sketch.expired_panes == 1
        assert sketch.rows_processed == 4          # lifetime, expiry included
        assert sketch.total_estimate() == 3.0      # in-horizon only

    def test_late_rows_within_horizon_accepted(self):
        sketch = SlidingWindowSketch(16, horizon="30s", pane="10s", seed=0)
        sketch.update("now", timestamp=25.0)
        sketch.update("late", timestamp=3.0)       # window 0, still retained
        assert sketch.estimate("late") == 1.0

    def test_rows_older_than_horizon_rejected(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
        sketch.update("now", timestamp=35.0)
        with pytest.raises(InvalidParameterError, match="expired"):
            sketch.update("stale", timestamp=5.0)

    def test_rows_before_origin_rejected(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", origin=100.0)
        with pytest.raises(InvalidParameterError, match="origin"):
            sketch.update("early", timestamp=50.0)

    def test_untimestamped_rows_land_in_active_window(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
        sketch.update("a")                         # before any timestamp: window 0
        sketch.update("b", timestamp=15.0)
        sketch.update("c")                         # active window (1)
        assert dict(sketch.window_panes())[1].estimates() == {"b": 1.0, "c": 1.0}

    def test_empty_windows_own_no_pane(self):
        sketch = SlidingWindowSketch(16, horizon="40s", pane="10s", seed=0)
        sketch.update("a", timestamp=5.0)
        sketch.update("b", timestamp=35.0)         # windows 1 and 2 stay empty
        assert [index for index, _ in sketch.window_panes()] == [0, 3]

    def test_tumbling_queries_answer_active_window_only(self):
        sketch = TumblingWindowSketch(16, width="10s", retain=3, seed=0)
        sketch.update("a", timestamp=5.0)
        sketch.update("b", timestamp=15.0)
        assert sketch.estimates() == {"b": 1.0}
        assert sketch.estimates(last=2) == {"a": 1.0, "b": 1.0}
        assert sketch.total_estimate() == 1.0
        assert sketch.total_estimate(last=3) == 2.0

    def test_last_must_be_positive(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s")
        with pytest.raises(InvalidParameterError):
            sketch.estimates(last=0)

    def test_pane_spec_validation(self):
        with pytest.raises(InvalidParameterError, match="unknown parameters"):
            SlidingWindowSketch(16, horizon="20s", pane="10s", bogus=1)
        with pytest.raises(InvalidParameterError):
            TumblingWindowSketch(16, width="10s", retain=0)

    def test_queries_before_any_row(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s")
        assert sketch.estimates() == {}
        assert sketch.estimate("x") == 0.0
        assert sketch.total_estimate() == 0.0
        assert sketch.heavy_hitters(0.5) == {}
        assert sketch.top_k(3) == []
        assert sketch.merged().estimates() == {}


# ----------------------------------------------------------------------
# Windowed queries
# ----------------------------------------------------------------------
class TestWindowedQueries:
    def _bursty(self, seed=0):
        sketch = SlidingWindowSketch(64, horizon="30s", pane="10s", seed=seed)
        rows = [("bg", 1.0, float(t)) for t in range(0, 60)]
        rows += [("hot", 1.0, 40.0 + 0.1 * i) for i in range(30)]
        rows.sort(key=lambda row: row[2])
        sketch.extend(rows)
        return sketch

    def test_heavy_hitters_scoped_to_horizon(self):
        sketch = self._bursty()
        # Horizon covers t in [30, 60): 30 bg rows + 30 hot rows.
        hitters = sketch.heavy_hitters(0.4)
        assert set(hitters) == {"bg", "hot"}
        assert hitters["hot"] == 30.0
        assert sketch.total_estimate() == 60.0

    def test_subset_sum_with_error_sums_pane_variances(self):
        sketch = self._bursty()
        result = sketch.subset_sum_with_error(lambda item: item == "hot")
        assert result.estimate == 30.0
        assert result.variance >= 0.0

    def test_top_k_rank_order(self):
        sketch = self._bursty()
        assert [item for item, _ in sketch.top_k(2)] == ["bg", "hot"]

    def test_merged_reduces_to_capacity(self):
        sketch = self._bursty()
        merged = sketch.merged(capacity=4, seed=1)
        assert isinstance(merged, UnbiasedSpaceSaving)
        assert len(merged.estimates()) <= 4
        # The unbiased reduction preserves the in-horizon total exactly.
        assert merged.total_estimate() == pytest.approx(sketch.total_estimate())

    def test_merged_requires_unbiased_panes(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", spec="misra_gries")
        sketch.update("a", timestamp=1.0)
        with pytest.raises(CapabilityError):
            sketch.merged()

    def test_serialize_capability_follows_the_pane_spec(self):
        from repro.api import capabilities
        from repro.errors import SerializationError

        serializable = SlidingWindowSketch(16, horizon="20s", pane="10s")
        assert "serialize" in capabilities(serializable)
        unserializable = SlidingWindowSketch(
            16, horizon="20s", pane="10s", spec="counting_sample"
        )
        assert "serialize" not in capabilities(unserializable)
        with pytest.raises(SerializationError):
            unserializable.to_bytes()
        session = repro.StreamSession(unserializable)
        with pytest.raises(CapabilityError):
            session.save_checkpoint("nowhere.ckpt")

    def test_non_mergeable_specs_still_answer_window_queries(self):
        sketch = SlidingWindowSketch(
            64, horizon="20s", pane="10s", spec="countmin", seed=0
        )
        sketch.update("a", timestamp=1.0)
        sketch.update("a", timestamp=15.0)
        assert sketch.estimate("a") == 2.0
        assert "a" in sketch.heavy_hitters(0.5)

    def test_update_batch_equals_scalar_loop(self):
        rng = np.random.default_rng(3)
        items = rng.integers(0, 40, size=2_000)
        ts = np.sort(rng.uniform(0.0, 100.0, size=2_000))
        batched = SlidingWindowSketch(64, horizon="40s", pane="10s", seed=9)
        batched.update_batch(items, timestamps=ts)
        scalar = SlidingWindowSketch(64, horizon="40s", pane="10s", seed=9)
        for item, t in zip(items, ts):
            scalar.update(int(item), timestamp=float(t))
        assert batched.estimates() == scalar.estimates()
        assert batched.total_estimate() == scalar.total_estimate()
        assert batched.rows_processed == scalar.rows_processed

    def test_stale_batch_rejected_without_partial_ingest(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
        sketch.update("now", timestamp=45.0)
        before = sketch.estimates()
        with pytest.raises(InvalidParameterError, match="older than the window"):
            sketch.update_batch(["a", "b"], timestamps=[1.0, 46.0])
        assert sketch.estimates() == before
        assert sketch.rows_processed == 1

    def test_misaligned_batch_arrays_rejected(self):
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
        with pytest.raises(InvalidParameterError, match="timestamps must align"):
            sketch.update_batch(["a", "b", "c"], timestamps=[1.0, 2.0])
        with pytest.raises(InvalidParameterError, match="timestamps must align"):
            sketch.update_batch(["a", "b", "c"], timestamps=[])
        with pytest.raises(InvalidParameterError, match="weights must align"):
            sketch.update_batch(["a", "b"], weights=[1.0], timestamps=[1.0, 2.0])
        assert sketch.rows_processed == 0

    def test_rejected_row_still_rotates_but_queries_stay_consistent(self):
        # The bad row's timestamp was observed, so time advances and the
        # old pane expires — and cached views must not survive that.
        sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
        sketch.update("a", timestamp=5.0)
        assert sketch.estimates() == {"a": 1.0}      # populate the cache
        with pytest.raises(Exception, match="positive weights"):
            sketch.update("b", 0.0, timestamp=100.0)
        assert sketch.active_window_index == 10
        assert sketch.estimates() == {}              # no stale cached view

    def test_mid_batch_failure_books_the_ingested_prefix(self):
        # A weight the pane spec rejects fails the batch mid-way; the
        # window groups applied before it stay ingested *and* accounted
        # for (rows, totals, cache), like a replay stopped at the bad row.
        sketch = SlidingWindowSketch(16, horizon="30s", pane="10s", seed=0)
        with pytest.raises(Exception, match="positive weights"):
            sketch.update_batch(
                ["a", "b"], weights=[1.0, -5.0], timestamps=[1.0, 25.0]
            )
        assert sketch.estimates() == {"a": 1.0}
        assert sketch.rows_processed == 1
        assert sketch.total_weight == 1.0

    def test_view_cache_invalidated_by_updates_and_rotation(self):
        sketch = SlidingWindowSketch(16, horizon="30s", pane="10s", seed=0)
        sketch.update("a", timestamp=5.0)
        assert sketch.estimate("a") == 1.0
        sketch.update("a", timestamp=6.0)           # same pane: update invalidates
        assert sketch.estimate("a") == 2.0
        sketch.update("b", timestamp=25.0)          # rotation invalidates
        assert sketch.estimate("a") == 2.0          # both rows still in horizon
        sketch.update("c", timestamp=45.0)          # expires window 0
        assert sketch.estimate("a") == 0.0


# ----------------------------------------------------------------------
# Decayed windows
# ----------------------------------------------------------------------
class TestDecayedWindow:
    def test_recent_rows_outweigh_old_rows(self):
        sketch = DecayedWindowSketch(16, policy="decay:exp:0.1", seed=0)
        sketch.update("old", timestamp=1.0)
        sketch.update("new", timestamp=30.0)
        assert sketch.estimate("new") > sketch.estimate("old")

    @pytest.mark.parametrize("policy", ["decay:exp:0.05", "decay:poly:2"])
    def test_update_batch_matches_decayed_weights(self, policy):
        sketch = DecayedWindowSketch(16, policy=policy, seed=0)
        sketch.update_batch(["a", "b"], timestamps=[10.0, 20.0])
        single = DecayedWindowSketch(16, policy=policy, seed=0)
        single.update("a", timestamp=10.0)
        single.update("b", timestamp=20.0)
        assert sketch.estimates() == pytest.approx(single.estimates())

    def test_total_estimate_is_decayed_total(self):
        sketch = DecayedWindowSketch(16, policy="decay:exp:0.1", seed=0)
        sketch.update("a", timestamp=5.0)
        sketch.update("b", timestamp=5.0)
        import math

        assert sketch.total_estimate() == pytest.approx(2.0)  # queried at t=5
        # At a later query time both rows have aged 10 more seconds.
        assert sketch.total_estimate(at_time=15.0) == pytest.approx(
            2.0 * math.exp(-1.0)
        )

    def test_heavy_hitters_use_decayed_shares(self):
        sketch = DecayedWindowSketch(32, policy="decay:exp:0.2", seed=0)
        for _ in range(20):
            sketch.update("stale", timestamp=1.0)
        for _ in range(3):
            sketch.update("fresh", timestamp=40.0)
        hitters = sketch.heavy_hitters(0.5)
        assert "fresh" in hitters and "stale" not in hitters

    def test_non_decay_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            DecayedWindowSketch(16, policy="tumbling:60s")


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestWindowSerialization:
    def test_sliding_round_trip_continues_identically(self):
        sketch = SlidingWindowSketch(32, horizon="30s", pane="10s", seed=5)
        rng = np.random.default_rng(0)
        for ts in np.sort(rng.uniform(0, 50, size=300)):
            sketch.update(int(rng.integers(0, 20)), timestamp=float(ts))
        restored = load_bytes(sketch.to_bytes())
        assert isinstance(restored, SlidingWindowSketch)
        assert restored.estimates() == sketch.estimates()
        assert restored.total_estimate() == sketch.total_estimate()
        assert restored.active_window_index == sketch.active_window_index
        for follow_up in [(7, 51.0), (8, 63.0), (7, 64.0)]:
            sketch.update(follow_up[0], timestamp=follow_up[1])
            restored.update(follow_up[0], timestamp=follow_up[1])
        assert restored.estimates() == sketch.estimates()

    def test_tumbling_round_trip_keeps_policy(self):
        sketch = TumblingWindowSketch(8, width="1m", retain=2, seed=1)
        sketch.update("a", timestamp=30.0)
        restored = load_bytes(sketch.to_bytes())
        assert isinstance(restored, TumblingWindowSketch)
        assert restored.window_policy() == sketch.window_policy()
        assert restored.estimates() == sketch.estimates()

    def test_decayed_round_trip(self):
        sketch = DecayedWindowSketch(16, policy="decay:exp:0.02", seed=2)
        sketch.update("a", timestamp=3.0)
        sketch.update("b", timestamp=9.0)
        restored = load_bytes(sketch.to_bytes())
        assert isinstance(restored, DecayedWindowSketch)
        assert restored.window_policy() == sketch.window_policy()
        assert restored.estimates() == sketch.estimates()
        sketch.update("c", timestamp=12.0)
        restored.update("c", timestamp=12.0)
        assert restored.estimates() == sketch.estimates()


# ----------------------------------------------------------------------
# Facade integration
# ----------------------------------------------------------------------
class TestWindowedSessions:
    def test_acceptance_sliding_session_answers_in_horizon_rows(self):
        session = repro.build(
            "unbiased_space_saving", size=100, window="sliding:5m/1m", seed=42
        )
        rows = [(f"ad{i % 10}", 1.0, float(t)) for i, t in enumerate(range(0, 900, 3))]
        session.extend(rows)
        sketch = session.estimator
        horizon_start = (
            sketch.active_window_index - sketch.num_panes + 1
        ) * sketch.pane_seconds
        in_horizon = [row for row in rows if row[2] >= horizon_start]
        truth = {}
        for item, _, _ in in_horizon:
            truth[item] = truth.get(item, 0.0) + 1.0
        assert session.heavy_hitters(0.05).groups == {
            item: count
            for item, count in truth.items()
            if count >= 0.05 * len(in_horizon)
        }
        assert session.estimates() == truth

    def test_every_window_policy_shares_the_session_surface(self):
        # Spec strings below are already canonical, so session.window
        # echoes them verbatim (see test_describe_round_trips).
        for window in ("tumbling:90s", "sliding:2m/30s", "decay:exp:0.01"):
            session = repro.build(
                "unbiased_space_saving", size=64, window=window, seed=7
            )
            session.update("a", timestamp=10.0)
            session.update("b", 2.0, timestamp=50.0)
            session.extend([("a", 1.0, 55.0)])
            session.update_batch(["c", "a"], timestamps=[56.0, 57.0])
            assert session.window == window
            assert session.estimate("a").estimate > 0
            assert session.subset_sum(lambda item: item in {"a", "b"}).estimate > 0
            assert "a" in session.heavy_hitters(0.1).groups
            assert session.top_k(2).groups
            assert session.total().estimate > 0
            assert window in repr(session)

    def test_all_time_sessions_reject_timestamps(self):
        session = repro.build("unbiased_space_saving", size=8, seed=0)
        assert session.window is None
        with pytest.raises(CapabilityError):
            session.update("x", timestamp=1.0)
        with pytest.raises(CapabilityError):
            session.update_batch(["x"], timestamps=[1.0])

    def test_window_requires_inline_backend(self):
        with pytest.raises(InvalidParameterError):
            repro.build(
                "unbiased_space_saving",
                size=8,
                backend="sharded",
                window="tumbling:60s",
            )

    def test_decay_window_requires_unbiased_spec(self):
        with pytest.raises(CapabilityError):
            repro.build("misra_gries", size=8, window="decay:exp:0.01")

    def test_unknown_window_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            repro.build(
                "unbiased_space_saving", size=8, window="tumbling:60s", bogus=3
            )

    def test_windowed_session_merged_and_checkpoint(self, tmp_path):
        session = repro.build(
            "unbiased_space_saving", size=32, window="sliding:1m/20s", seed=3
        )
        session.update_batch(
            ["a", "b", "a", "c"], timestamps=[1.0, 10.0, 30.0, 55.0]
        )
        merged = session.merged()
        assert merged.total_estimate() == pytest.approx(4.0)
        path = tmp_path / "window.ckpt"
        session.save_checkpoint(path)
        restored = repro.load_checkpoint(path)
        assert restored.estimates() == session.estimates()

    def test_wrapping_a_windowed_sketch_detects_the_policy(self):
        sketch = SlidingWindowSketch(16, horizon="40s", pane="20s", seed=0)
        session = repro.StreamSession(sketch)
        assert session.window == "sliding:40s/20s"
        session.update("x", timestamp=5.0)
        assert session.estimates() == {"x": 1.0}
