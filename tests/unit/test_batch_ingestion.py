"""Batched ingestion: update_batch equivalence and the sharded executor.

Three families of guarantees are pinned down here:

1. For every sketch that overrides ``update_batch``, the batched state
   equals a scalar ``update`` loop over the batch's collapsed
   ``(item, summed weight)`` pairs in first-occurrence order, under the
   same seed (exact equality, including the randomized sketches, because
   the batch path consumes the RNG identically).
2. For the purely additive sketches (CountMin without conservative update,
   Count Sketch, bottom-k) the batched state also equals the raw row loop
   exactly.
3. ``ShardedSketch`` answers match manually built per-shard sketches and a
   single merged sketch produced by ``merge_many_unbiased``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.base import HeapBinStore, StreamSummaryBinStore
from repro.core.batching import collapse_batch
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.merge import merge_many_unbiased
from repro.core.stream_summary import StreamSummary
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.partition import hash_partition_batch, stable_shard
from repro.distributed.sharded import ShardedSketch
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.core.base import FrequentItemSketch
from repro.frequent.count_sketch import CountSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.lossy_counting import LossyCountingSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.frequent.sticky_sampling import StickySamplingSketch
from repro.sampling.bottom_k import BottomKSketch
from repro.sampling.priority import PrioritySample, StreamingPrioritySampler
from repro.sampling.varopt import varopt_sample, varopt_sample_batch


# ----------------------------------------------------------------------
# collapse_batch
# ----------------------------------------------------------------------
class TestCollapseBatch:
    def test_unit_weights_first_occurrence_order(self):
        unique, collapsed, rows, total = collapse_batch(["b", "a", "b", "c", "b"])
        assert unique == ["b", "a", "c"]
        assert collapsed == [3.0, 1.0, 1.0]
        assert rows == 5
        assert total == 5.0

    def test_explicit_weights(self):
        unique, collapsed, rows, total = collapse_batch(
            ["x", "y", "x"], [1.5, 2.0, 0.5]
        )
        assert unique == ["x", "y"]
        assert collapsed == [2.0, 2.0]
        assert rows == 3
        assert total == 4.0

    def test_numpy_path_matches_generic_path(self, batch_workload):
        array = np.asarray(batch_workload, dtype=np.int64)
        assert collapse_batch(array) == collapse_batch(batch_workload)

    def test_numpy_path_with_weights(self):
        items = np.asarray([3, 1, 3, 2, 1], dtype=np.int64)
        weights = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        unique, collapsed, rows, total = collapse_batch(items, weights)
        assert unique == [3, 1, 2]
        assert collapsed == [4.0, 7.0, 4.0]
        assert rows == 5 and total == 15.0
        # Labels come back as Python ints so repr-based hashing matches the
        # scalar path.
        assert all(type(item) is int for item in unique)

    def test_empty_batch(self):
        assert collapse_batch([]) == ([], [], 0, 0.0)
        assert collapse_batch(np.asarray([], dtype=np.int64)) == ([], [], 0, 0.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(InvalidParameterError):
            collapse_batch(["a", "b"], [1.0])
        with pytest.raises(InvalidParameterError):
            collapse_batch(np.asarray([1, 2]), np.asarray([1.0]))


# ----------------------------------------------------------------------
# Batch == scalar loop over collapsed pairs (every overriding sketch)
# ----------------------------------------------------------------------
class _ExactCounterSketch(FrequentItemSketch):
    """Minimal weighted sketch using the inherited ``update_batch``."""

    def __init__(self, capacity, *, seed=None):
        super().__init__(capacity, seed=seed)
        self._exact = {}

    def update(self, item, weight=1.0):
        self._record_update(weight)
        self._exact[item] = self._exact.get(item, 0.0) + weight

    def estimate(self, item):
        return self._exact.get(item, 0.0)

    def estimates(self):
        return dict(self._exact)


SKETCH_FACTORIES = [
    pytest.param(lambda seed: UnbiasedSpaceSaving(24, seed=seed), id="uss"),
    pytest.param(lambda seed: UnbiasedSpaceSaving(24, seed=seed, store="heap"), id="uss-heap"),
    pytest.param(lambda seed: DeterministicSpaceSaving(24, seed=seed), id="dss"),
    pytest.param(lambda seed: MisraGriesSketch(24, seed=seed), id="misra-gries"),
    pytest.param(lambda seed: CountMinSketch(width=128, depth=4, seed=seed), id="countmin"),
    pytest.param(
        lambda seed: CountMinSketch(width=128, depth=4, conservative=True, seed=seed),
        id="countmin-conservative",
    ),
    pytest.param(lambda seed: CountSketch(width=128, depth=4, seed=seed), id="countsketch"),
    pytest.param(lambda seed: BottomKSketch(24, seed=seed), id="bottom-k"),
    # No override: exercises the FrequentItemSketch base implementation.
    pytest.param(lambda seed: _ExactCounterSketch(10_000, seed=seed), id="exact-base"),
]


def _estimates_of(sketch, items):
    # CountMin / Count Sketch enumerate only a tracked-key view (absent
    # here), so compare them on explicit per-item point estimates.
    estimates = getattr(sketch, "estimates", None)
    if estimates is not None and not isinstance(sketch, (CountMinSketch, CountSketch)):
        return sketch.estimates()
    return {item: sketch.estimate(item) for item in items}


@pytest.mark.parametrize("factory", SKETCH_FACTORIES)
class TestBatchMatchesCollapsedScalarLoop:
    def test_list_input(self, factory, batch_workload, batch_seed):
        batched = factory(batch_seed).update_batch(batch_workload)
        scalar = factory(batch_seed)
        unique, collapsed, _, __ = collapse_batch(batch_workload)
        for item, weight in zip(unique, collapsed):
            scalar.update(item, weight)
        assert _estimates_of(batched, unique) == _estimates_of(scalar, unique)
        assert batched.total_weight == scalar.total_weight
        assert batched.rows_processed == len(batch_workload)

    def test_numpy_input_matches_list_input(self, factory, batch_workload, batch_seed):
        from_list = factory(batch_seed).update_batch(batch_workload)
        from_array = factory(batch_seed).update_batch(
            np.asarray(batch_workload, dtype=np.int64)
        )
        items = set(batch_workload)
        assert _estimates_of(from_list, items) == _estimates_of(from_array, items)
        assert from_list.rows_processed == from_array.rows_processed

    def test_chunked_batches_accumulate(self, factory, batch_workload, batch_seed):
        whole = factory(batch_seed)
        chunked = factory(batch_seed)
        unique, collapsed, _, __ = collapse_batch(batch_workload)
        for item, weight in zip(unique, collapsed):
            whole.update(item, weight)
        half = len(batch_workload) // 2
        # Chunk at a collapsed-pair boundary so both sides see the same
        # weighted update sequence.
        pairs = list(zip(unique, collapsed))
        first, second = pairs[:half], pairs[half:]
        chunked.update_batch([p[0] for p in first], [p[1] for p in first])
        chunked.update_batch([p[0] for p in second], [p[1] for p in second])
        assert _estimates_of(whole, unique) == _estimates_of(chunked, unique)


# ----------------------------------------------------------------------
# Additive sketches: batch == raw row loop, exactly
# ----------------------------------------------------------------------
ADDITIVE_FACTORIES = [
    pytest.param(lambda seed: CountMinSketch(width=128, depth=4, seed=seed), id="countmin"),
    pytest.param(lambda seed: CountSketch(width=128, depth=4, seed=seed), id="countsketch"),
    pytest.param(lambda seed: BottomKSketch(24, seed=seed), id="bottom-k"),
]


@pytest.mark.parametrize("factory", ADDITIVE_FACTORIES)
def test_additive_batch_matches_raw_row_loop(factory, batch_workload, batch_seed):
    batched = factory(batch_seed).update_batch(batch_workload)
    scalar = factory(batch_seed)
    for row in batch_workload:
        scalar.update(row)
    items = set(batch_workload)
    assert {i: batched.estimate(i) for i in items} == {
        i: scalar.estimate(i) for i in items
    }
    assert batched.rows_processed == scalar.rows_processed
    assert batched.total_weight == scalar.total_weight


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LossyCountingSketch(epsilon=0.01),
        lambda: StickySamplingSketch(epsilon=0.02, seed=20180618),
    ],
    ids=["lossy_counting", "sticky_sampling"],
)
def test_unit_row_batch_matches_scalar_loop(factory, batch_workload):
    # The dedicated unit-row overrides replay the batch exactly as the
    # scalar loop would — same bucket boundaries / rate halvings, same RNG
    # draw order — so the final state is identical, not just statistically
    # equivalent.
    scalar = factory()
    for row in batch_workload:
        scalar.update(row)
    batched = factory()
    batched.update_batch(batch_workload)
    assert batched.estimates() == scalar.estimates()
    assert batched.rows_processed == scalar.rows_processed
    assert batched.total_weight == scalar.total_weight

    array_batched = factory()
    array_batched.update_batch(np.asarray(batch_workload, dtype=np.int64))
    assert array_batched.estimates() == scalar.estimates()


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LossyCountingSketch(epsilon=0.01),
        lambda: StickySamplingSketch(epsilon=0.02, seed=20180618),
    ],
    ids=["lossy_counting", "sticky_sampling"],
)
def test_unit_row_batch_split_points_are_irrelevant(factory, batch_workload):
    # Splitting the same rows into arbitrary chunks (crossing bucket and
    # rate-change boundaries mid-chunk) leaves the state unchanged.
    whole = factory()
    whole.update_batch(batch_workload)
    chunked = factory()
    for start in range(0, len(batch_workload), 997):
        chunked.update_batch(batch_workload[start : start + 997])
    assert chunked.estimates() == whole.estimates()
    assert chunked.rows_processed == whole.rows_processed


def test_unit_row_batch_weight_validation():
    with pytest.raises(UnsupportedUpdateError):
        LossyCountingSketch(epsilon=0.1).update_batch(["a", "b"], [1.0, 2.0])
    with pytest.raises(UnsupportedUpdateError):
        StickySamplingSketch(epsilon=0.1, seed=0).update_batch(["a"], [0.5])
    with pytest.raises(InvalidParameterError):
        LossyCountingSketch(epsilon=0.1).update_batch(["a", "b"], [1.0])
    # All-ones weights are accepted as unit rows.
    sketch = StickySamplingSketch(epsilon=0.1, seed=0)
    sketch.update_batch(["a", "b", "a"], [1, 1, 1])
    assert sketch.rows_processed == 3


def test_unit_only_sketches_accept_duplicate_batches():
    # Lossy Counting is defined for unit rows only; its dedicated batch
    # override (PR 2) replays duplicates as unit rows instead of rejecting
    # the collapsed weight the generic path would produce.
    sketch = LossyCountingSketch(0.02, seed=0)
    sketch.update_batch(["a", "b", "c"])
    assert sketch.rows_processed == 3
    duplicated = LossyCountingSketch(0.02, seed=0)
    duplicated.update_batch(["a", "a"])
    assert duplicated.rows_processed == 2
    assert duplicated.estimate("a") == 2.0
    # Non-unit weights are still rejected explicitly.
    with pytest.raises(UnsupportedUpdateError):
        LossyCountingSketch(0.02, seed=0).update_batch(["a"], [2.0])


def test_update_batch_weight_validation():
    with pytest.raises(UnsupportedUpdateError):
        UnbiasedSpaceSaving(8, seed=0).update_batch(["a"], [0.0])
    with pytest.raises(UnsupportedUpdateError):
        DeterministicSpaceSaving(8, seed=0).update_batch(["a", "b"], [1.0, -1.0])
    with pytest.raises(UnsupportedUpdateError):
        MisraGriesSketch(8).update_batch(["a"], [0.5])
    with pytest.raises(UnsupportedUpdateError):
        CountMinSketch(width=16, depth=2, seed=0).update_batch(["a"], [-1.0])


def test_update_batch_float_weights_migrate_uss_store():
    sketch = UnbiasedSpaceSaving(8, seed=0)
    sketch.update_batch(["a", "b", "a"], [1.5, 2.0, 1.0])
    assert sketch.estimate("a") == 2.5
    assert sketch.total_weight == 4.5


def test_countmin_heavy_hitter_tracking_survives_batching():
    scalar = CountMinSketch(width=256, depth=4, seed=1, track_heavy_hitters=4)
    batched = CountMinSketch(width=256, depth=4, seed=1, track_heavy_hitters=4)
    rows = ["hot"] * 50 + ["warm"] * 20 + [f"cold{i}" for i in range(30)]
    for row in rows:
        scalar.update(row)
    batched.update_batch(rows)
    assert batched.heavy_hitters(0.2) == scalar.heavy_hitters(0.2)


def test_countmin_heavy_tracking_matches_collapsed_loop_under_collisions():
    # A tiny table forces hash collisions, where _track's admission decisions
    # depend on the table state at the moment each item's update lands; the
    # batch path must preserve the collapsed-loop ordering of those reads.
    rows = [f"item{i % 13}" for i in range(200)] + ["hot"] * 40
    scalar = CountMinSketch(width=8, depth=2, seed=3, track_heavy_hitters=3)
    batched = CountMinSketch(width=8, depth=2, seed=3, track_heavy_hitters=3)
    unique, collapsed, _, __ = collapse_batch(rows)
    for item, weight in zip(unique, collapsed):
        scalar.update(item, weight)
    batched.update_batch(rows)
    assert batched._heavy_members == scalar._heavy_members


# ----------------------------------------------------------------------
# Bulk bin-store / stream-summary increments
# ----------------------------------------------------------------------
class TestBulkIncrements:
    def test_stream_summary_increment_many(self):
        sequential, bulk = StreamSummary(), StreamSummary()
        for summary in (sequential, bulk):
            for label in "abcd":
                summary.insert(label, 1)
        pairs = [("a", 2), ("c", 5), ("b", 0), ("d", 2)]
        for label, by in pairs:
            sequential.increment(label, by)
        bulk.increment_many(pairs)
        assert bulk.counts() == sequential.counts()
        bulk.check_invariants()

    def test_stream_summary_increment_many_validates_before_applying(self):
        summary = StreamSummary()
        summary.insert("a", 1)
        with pytest.raises(KeyError):
            summary.increment_many([("a", 1), ("missing", 1)])
        # Validation happens before any mutation.
        assert summary.counts() == {"a": 1}

    @pytest.mark.parametrize("store_cls", [StreamSummaryBinStore, HeapBinStore])
    def test_bin_store_increment_batch(self, store_cls):
        store = store_cls(rng=random.Random(0))
        for label in "xyz":
            store.insert(label, 1.0)
        store.increment_batch([("x", 2.0), ("z", 3.0)])
        assert store.counts() == {"x": 3.0, "y": 1.0, "z": 4.0}


# ----------------------------------------------------------------------
# Sampling layer batch entry points
# ----------------------------------------------------------------------
class TestSamplingBatchAPIs:
    def test_priority_sample_from_rows_collapses(self):
        rows = ["a", "b", "a", "c", "a", "b"]
        unique, collapsed, _, __ = collapse_batch(rows)
        direct = PrioritySample(
            dict(zip(unique, collapsed)), sample_size=2, rng=random.Random(5)
        )
        batched = PrioritySample.from_rows(rows, sample_size=2, rng=random.Random(5))
        assert batched.estimates() == direct.estimates()
        assert batched.threshold == direct.threshold

    def test_streaming_priority_offer_batch_matches_sequential(self):
        pairs = [(f"item{i}", float(i % 7 + 1)) for i in range(40)]
        sequential = StreamingPrioritySampler(8, rng=random.Random(3))
        for item, value in pairs:
            sequential.offer(item, value)
        batched = StreamingPrioritySampler(8, rng=random.Random(3)).offer_batch(
            [item for item, _ in pairs], [value for _, value in pairs]
        )
        seq_sample = {s.item: s.adjusted_value for s in sequential.result()}
        batch_sample = {s.item: s.adjusted_value for s in batched.result()}
        assert batch_sample == seq_sample

    def test_streaming_priority_offer_batch_validates_alignment(self):
        with pytest.raises(InvalidParameterError):
            StreamingPrioritySampler(4).offer_batch(["a", "b"], [1.0])

    def test_varopt_sample_batch_matches_collapsed_dict(self):
        rows = ["a", "b", "a", "c", "d", "a", "b"]
        unique, collapsed, _, __ = collapse_batch(rows)
        direct = varopt_sample(
            dict(zip(unique, collapsed)), sample_size=3, rng=random.Random(9)
        )
        batched = varopt_sample_batch(rows, sample_size=3, rng=random.Random(9))
        assert {s.item: s.adjusted_value for s in batched} == {
            s.item: s.adjusted_value for s in direct
        }


# ----------------------------------------------------------------------
# ShardedSketch
# ----------------------------------------------------------------------
class TestShardedSketch:
    NUM_SHARDS = 4
    CAPACITY = 32

    @pytest.fixture
    def sharded(self, batch_workload, batch_seed):
        sketch = ShardedSketch(self.CAPACITY, self.NUM_SHARDS, seed=batch_seed)
        sketch.update_batch(np.asarray(batch_workload, dtype=np.int64))
        return sketch

    def manual_shards(self, batch_workload, batch_seed):
        """Per-shard sketches built by hand with the same routing and seeds."""
        unique, collapsed, _, __ = collapse_batch(batch_workload)
        parts = hash_partition_batch(
            unique, collapsed, self.NUM_SHARDS, seed=batch_seed
        )
        shards = []
        for index, (items, weights) in enumerate(parts):
            shard = UnbiasedSpaceSaving(self.CAPACITY, seed=batch_seed + index)
            shard.update_batch(items, weights)
            shards.append(shard)
        return shards

    def test_matches_manually_built_shards(self, sharded, batch_workload, batch_seed):
        manual = self.manual_shards(batch_workload, batch_seed)
        for built, expected in zip(sharded.shards, manual):
            assert built.estimates() == expected.estimates()

    def test_routing_is_stable_and_disjoint(self, sharded):
        retained_per_shard = [set(shard.estimates()) for shard in sharded.shards]
        for index, retained in enumerate(retained_per_shard):
            for item in retained:
                assert sharded.shard_index(item) == index
        union = set().union(*retained_per_shard)
        assert len(union) == sum(len(retained) for retained in retained_per_shard)

    def test_point_and_union_queries(self, sharded, batch_workload):
        estimates = sharded.estimates()
        for item in list(estimates)[:10]:
            assert sharded.estimate(item) == estimates[item]
            assert item in sharded
        assert len(sharded) == len(estimates)
        assert sharded.rows_processed == len(batch_workload)
        # Each shard preserves its total exactly, so the union does too.
        assert sharded.total_estimate() == pytest.approx(len(batch_workload))
        even = sharded.subset_sum(lambda item: item % 2 == 0)
        assert even == pytest.approx(
            sum(v for item, v in estimates.items() if item % 2 == 0)
        )
        with_error = sharded.subset_sum_with_error(lambda item: item % 2 == 0)
        assert with_error.estimate == pytest.approx(even)
        assert with_error.variance >= 0.0

    def test_merged_goes_through_merge_machinery(
        self, sharded, batch_workload, batch_seed
    ):
        merged = sharded.merged()
        expected = merge_many_unbiased(
            list(sharded.shards), capacity=self.CAPACITY, method="pps", seed=batch_seed
        )
        assert merged.estimates() == expected.estimates()
        assert merged.capacity == self.CAPACITY
        # Cache: same object until the next update invalidates it.
        assert sharded.merged() is merged
        sharded.update(batch_workload[0])
        assert sharded.merged() is not merged

    def test_merged_answers_track_union(self, sharded):
        merged = sharded.merged()
        union_total = sum(sharded.estimates().values())
        assert merged.total_estimate() == pytest.approx(union_total)

    def test_scalar_updates_route_like_batches(self, batch_workload, batch_seed):
        scalar = ShardedSketch(self.CAPACITY, self.NUM_SHARDS, seed=batch_seed)
        unique, collapsed, _, __ = collapse_batch(batch_workload)
        for item, weight in zip(unique, collapsed):
            scalar.update(item, weight)
        batched = ShardedSketch(self.CAPACITY, self.NUM_SHARDS, seed=batch_seed)
        batched.update_batch(batch_workload)
        assert scalar.estimates() == batched.estimates()

    def test_heavy_hitters_and_top_k(self, sharded, batch_workload):
        top = sharded.top_k(5)
        assert len(top) == 5
        assert top == sorted(top, key=lambda kv: (-kv[1], repr(kv[0])))
        hitters = sharded.heavy_hitters(0.01)
        threshold = 0.01 * len(batch_workload)
        assert all(count >= threshold for count in hitters.values())

    def test_unseeded_shards_are_entropy_seeded(self):
        # Without a seed the shards must behave like unseeded scalar
        # sketches: independent entropy, not a silent fixed 0..N-1 seeding.
        first = ShardedSketch(8, 2)
        second = ShardedSketch(8, 2)
        assert first.shards[0]._rng.random() != second.shards[0]._rng.random()

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ShardedSketch(8, 0)
        sketch = ShardedSketch(8, 2, seed=0)
        with pytest.raises(InvalidParameterError):
            sketch.heavy_hitters(0.0)
        with pytest.raises(InvalidParameterError):
            sketch.top_k(-1)
        with pytest.raises(InvalidParameterError):
            stable_shard("a", 0)
