"""Unit tests for the streaming connectors (``repro.connectors``).

Covers the three sources behind :class:`SourceProtocol` — partitioned
log, file tail, socket firehose — plus the :class:`SourceBatch` shape,
the :class:`DriverCheckpoint` envelope, the soak workload generator and
the throughput bench's ``--modes`` CLI validation.  The driver's
kill/restore behaviour lives in
``tests/integration/test_pipeline_resume.py``.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.connectors import (
    DriverCheckpoint,
    FileTailSource,
    FirehoseServer,
    LogSource,
    SocketFirehoseSource,
    SourceBatch,
    SourceProtocol,
    rows_to_columns,
)
from repro.errors import (
    ConnectorError,
    InvalidParameterError,
    ReproError,
    SerializationError,
    StaleOffsetError,
    UnknownPartitionError,
)
from repro.io import load_bytes, load_checkpoint, save_checkpoint
from repro.streams import bursty_soak_stream

ROWS = [("a", 1.0, 0.5), ("b", 2.0, 1.0), ("a", 3.0, 2.0), ("c", 1.0, 3.0)]


# ----------------------------------------------------------------------
# SourceBatch / rows_to_columns
# ----------------------------------------------------------------------
class TestSourceBatch:
    def test_rows_to_columns_splits_and_coerces(self):
        items, weights, timestamps = rows_to_columns([("x", 1, 2), ("y", 3, 4)])
        assert items == ["x", "y"]
        assert weights == [1.0, 3.0]
        assert timestamps == [2.0, 4.0]

    def test_from_rows_round_trips(self):
        batch = SourceBatch.from_rows("p0", ROWS, next_offset=4)
        assert len(batch) == 4
        assert bool(batch)
        assert batch.items == ["a", "b", "a", "c"]
        assert batch.next_offset == 4

    def test_empty_batch_is_falsy(self):
        batch = SourceBatch(partition="p0", next_offset=7)
        assert len(batch) == 0
        assert not batch

    def test_misaligned_columns_rejected(self):
        with pytest.raises(InvalidParameterError, match="columns must align"):
            SourceBatch(
                partition="p0", items=["a"], weights=[], timestamps=[0.0]
            )


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
class TestConnectorErrors:
    def test_hierarchy(self):
        assert issubclass(ConnectorError, ReproError)
        assert issubclass(StaleOffsetError, ConnectorError)
        assert issubclass(StaleOffsetError, ValueError)
        assert issubclass(UnknownPartitionError, ConnectorError)
        assert issubclass(UnknownPartitionError, KeyError)

    def test_unknown_partition_str_is_message_not_repr(self):
        # KeyError.__str__ reprs its argument; the override keeps the
        # message readable.
        assert str(UnknownPartitionError("no such partition")) == (
            "no such partition"
        )


# ----------------------------------------------------------------------
# LogSource
# ----------------------------------------------------------------------
class TestLogSource:
    def test_implements_source_protocol(self):
        assert isinstance(LogSource(), SourceProtocol)

    def test_append_routes_items_stably(self):
        source = LogSource(num_partitions=4, seed=3)
        first = source.append("hot-item", 1.0, 0.0)
        for _ in range(5):
            assert source.append("hot-item", 1.0, 0.0) == first

    def test_poll_is_deterministic_and_offset_addressed(self):
        source = LogSource.from_rows(ROWS, num_partitions=2, seed=7)
        for partition in source.partitions():
            end = source.end_offsets()[partition]
            once = source.poll(partition, 0, 100)
            again = source.poll(partition, 0, 100)
            assert once == again
            assert once.next_offset == end
            # Paging two-at-a-time covers the same rows.
            paged, offset = [], 0
            while True:
                batch = source.poll(partition, offset, 2)
                if not batch:
                    break
                paged.extend(batch.items)
                offset = batch.next_offset
            assert paged == once.items

    def test_poll_at_frontier_is_empty_same_offset(self):
        source = LogSource.from_rows(ROWS, num_partitions=1)
        batch = source.poll("p0", len(ROWS), 10)
        assert not batch
        assert batch.next_offset == len(ROWS)

    def test_poll_past_end_raises_stale_offset(self):
        source = LogSource.from_rows(ROWS, num_partitions=1)
        with pytest.raises(StaleOffsetError, match="rewound"):
            source.poll("p0", len(ROWS) + 1, 10)

    def test_truncate_invalidates_recorded_offsets(self):
        source = LogSource.from_rows(ROWS, num_partitions=1)
        recorded = source.poll("p0", 0, 100).next_offset
        source.truncate("p0", 1)
        with pytest.raises(StaleOffsetError):
            source.poll("p0", recorded, 10)
        assert source.poll("p0", 0, 100).next_offset == 1

    def test_unknown_partition(self):
        with pytest.raises(UnknownPartitionError, match="no partition"):
            LogSource(num_partitions=2).poll("p9", 0, 1)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            LogSource(num_partitions=0)
        source = LogSource()
        with pytest.raises(InvalidParameterError):
            source.poll("p0", -1, 1)
        with pytest.raises(InvalidParameterError):
            source.poll("p0", 0, 0)
        with pytest.raises(InvalidParameterError):
            source.truncate("p0", -1)


# ----------------------------------------------------------------------
# FileTailSource
# ----------------------------------------------------------------------
class TestFileTailSource:
    def test_implements_source_protocol(self, tmp_path):
        assert isinstance(
            FileTailSource(tmp_path / "events.jsonl"), SourceProtocol
        )

    def test_write_then_poll_round_trips(self, tmp_path):
        source = FileTailSource(tmp_path / "events.jsonl")
        assert source.partitions() == ["events.jsonl"]
        assert source.write_rows(ROWS) == len(ROWS)
        batch = source.poll("events.jsonl", 0, 100)
        assert batch.items == [item for item, _, _ in ROWS]
        assert batch.weights == [w for _, w, _ in ROWS]
        assert batch.timestamps == [ts for _, _, ts in ROWS]
        # Byte offsets: polling from next_offset sees only new rows.
        source.write_rows([("d", 4.0, 9.0)])
        tail = source.poll("events.jsonl", batch.next_offset, 100)
        assert tail.items == ["d"]

    def test_tuple_items_survive_the_json_hop(self, tmp_path):
        source = FileTailSource(tmp_path / "events.jsonl")
        source.write_rows([(("ad", 17), 1.0, 0.0)])
        assert source.poll("events.jsonl", 0, 10).items == [("ad", 17)]

    def test_missing_file_polls_empty_at_zero(self, tmp_path):
        source = FileTailSource(tmp_path / "absent.jsonl")
        batch = source.poll("absent.jsonl", 0, 10)
        assert not batch and batch.next_offset == 0

    def test_missing_file_with_recorded_offset_is_stale(self, tmp_path):
        path = tmp_path / "rotated.jsonl"
        source = FileTailSource(path)
        source.write_rows(ROWS)
        offset = source.poll("rotated.jsonl", 0, 100).next_offset
        path.unlink()
        with pytest.raises(StaleOffsetError, match="no longer exists"):
            source.poll("rotated.jsonl", offset, 10)

    def test_shrunk_file_is_stale(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        source = FileTailSource(path)
        source.write_rows(ROWS)
        offset = source.poll("truncated.jsonl", 0, 100).next_offset
        path.write_text("")
        with pytest.raises(StaleOffsetError, match="truncated"):
            source.poll("truncated.jsonl", offset, 10)

    def test_incomplete_tail_line_waits_for_newline(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        source = FileTailSource(path, partition="tail")
        source.write_rows(ROWS[:2])
        complete = source.poll("tail", 0, 100)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"item": "s0", "weight": 1.0')  # no newline yet
        waiting = source.poll("tail", 0, 100)
        assert waiting.items == complete.items
        assert waiting.next_offset == complete.next_offset
        with path.open("a", encoding="utf-8") as handle:
            handle.write(', "ts": 5.0}\n')
        finished = source.poll("tail", complete.next_offset, 100)
        assert finished.items == ["s0"]

    def test_malformed_line_raises_connector_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ConnectorError):
            FileTailSource(path, partition="bad").poll("bad", 0, 10)

    def test_wrong_partition_name(self, tmp_path):
        source = FileTailSource(tmp_path / "a.jsonl", partition="a")
        with pytest.raises(UnknownPartitionError):
            source.poll("b", 0, 1)


# ----------------------------------------------------------------------
# Socket firehose
# ----------------------------------------------------------------------
class TestSocketFirehose:
    def test_polls_replay_identically_across_the_socket(self):
        backing = LogSource.from_rows(ROWS, num_partitions=2, seed=7)
        with FirehoseServer(backing) as server:
            remote = SocketFirehoseSource(*server.address)
            assert isinstance(remote, SourceProtocol)
            assert list(remote.partitions()) == list(backing.partitions())
            for partition in backing.partitions():
                local = backing.poll(partition, 0, 100)
                over_wire = remote.poll(partition, 0, 100)
                assert over_wire == local
                # Replayable: the same poll twice returns the same batch.
                assert remote.poll(partition, 0, 100) == over_wire

    def test_typed_errors_reraise_locally(self):
        backing = LogSource.from_rows(ROWS, num_partitions=1)
        with FirehoseServer(backing) as server:
            remote = SocketFirehoseSource(*server.address)
            with pytest.raises(StaleOffsetError):
                remote.poll("p0", len(ROWS) + 5, 10)
            with pytest.raises(UnknownPartitionError):
                remote.poll("p9", 0, 10)

    def test_unreachable_server_raises_connector_error(self):
        backing = LogSource(num_partitions=1)
        with FirehoseServer(backing) as server:
            host, port = server.address
        # The server is stopped; the port no longer answers.
        remote = SocketFirehoseSource(host, port, connect_timeout=0.5)
        with pytest.raises(ConnectorError, match="unreachable"):
            remote.partitions()


# ----------------------------------------------------------------------
# DriverCheckpoint envelope
# ----------------------------------------------------------------------
class TestDriverCheckpoint:
    def _checkpoint(self, **overrides):
        fields = dict(
            offsets={"p0": 12, "p1": 7},
            frame=b"\x01\x02\x03nested-frame",
            session="pipeline",
            tenant="ads",
            spec="unbiased_space_saving",
            backend="inline",
            rows_applied=19,
            ticks=4,
            rows_ingested=19,
            tick_cursor="p0",
        )
        fields.update(overrides)
        return DriverCheckpoint(**fields)

    def test_round_trips_through_the_envelope(self, tmp_path):
        original = self._checkpoint()
        path = tmp_path / "driver.ckpt"
        save_checkpoint(original, path)
        loaded = load_checkpoint(path, expected_type=DriverCheckpoint)
        assert loaded.offsets == original.offsets
        assert loaded.frame == original.frame
        assert (loaded.session, loaded.tenant) == ("pipeline", "ads")
        assert (loaded.spec, loaded.backend) == (
            "unbiased_space_saving",
            "inline",
        )
        assert loaded.rows_applied == 19
        assert (loaded.ticks, loaded.rows_ingested) == (4, 19)
        assert loaded.tick_cursor == "p0"

    def test_dispatches_through_the_type_registry(self):
        # load_bytes routes on the envelope's type name, so driver
        # checkpoints coexist with sketch payloads in one directory.
        loaded = load_bytes(self._checkpoint().to_bytes())
        assert isinstance(loaded, DriverCheckpoint)
        assert loaded.offsets == {"p0": 12, "p1": 7}

    def test_none_tick_cursor_round_trips(self):
        loaded = load_bytes(self._checkpoint(tick_cursor=None).to_bytes())
        assert loaded.tick_cursor is None

    def test_negative_offset_rejected(self):
        with pytest.raises(InvalidParameterError):
            self._checkpoint(offsets={"p0": -1})

    def test_missing_frame_array_rejected(self):
        with pytest.raises(SerializationError, match="missing its sketch"):
            DriverCheckpoint._from_serial_state({"offsets": {}}, {})


# ----------------------------------------------------------------------
# Soak workload generator
# ----------------------------------------------------------------------
class TestBurstySoakStream:
    def test_shape_and_determinism(self):
        make = lambda: bursty_soak_stream(  # noqa: E731
            1_000,
            hours=2.0,
            num_items=50,
            bursts_per_hour=2.0,
            burst_rows=100,
            rng=np.random.default_rng(7),
        )
        rows = make()
        assert len(rows) == 2 * 1_000 + 4 * 100
        assert rows == make()  # one seed fixes the whole workload
        timestamps = [ts for _, _, ts in rows]
        assert timestamps == sorted(timestamps)
        assert 0.0 <= timestamps[0] and timestamps[-1] < 2 * 3600.0

    def test_burst_items_are_outside_the_background_alphabet(self):
        rows = bursty_soak_stream(
            500,
            hours=1.0,
            num_items=20,
            bursts_per_hour=3.0,
            burst_rows=50,
            rng=np.random.default_rng(0),
        )
        burst_items = {item for item, _, _ in rows if item > 20}
        assert burst_items == {21, 22, 23}
        for spike in burst_items:
            count = sum(1 for item, _, _ in rows if item == spike)
            assert count == 50

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            bursty_soak_stream(-1)
        with pytest.raises(InvalidParameterError):
            bursty_soak_stream(100, hours=0.0)
        with pytest.raises(InvalidParameterError):
            bursty_soak_stream(100, bursts_per_hour=-2.0)


# ----------------------------------------------------------------------
# bench_update_throughput --modes CLI validation
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_update_throughput",
    REPO_ROOT / "benchmarks" / "bench_update_throughput.py",
)
bench_update_throughput = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_update_throughput)


class TestModesValidation:
    def test_unknown_mode_fails_fast_listing_valid_modes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_update_throughput.main(["--modes", "scalr,batched"])
        assert excinfo.value.code == 2  # argparse usage error, not a run
        message = capsys.readouterr().err
        assert "'scalr'" in message
        for mode in bench_update_throughput.ALL_MODES + (
            "cluster",
            "rebalance",
        ):
            assert mode in message

    def test_empty_selection_fails_fast(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_update_throughput.main(["--modes", ","])
        assert excinfo.value.code == 2
        assert "selected nothing" in capsys.readouterr().err
