"""Unit tests for the query layer: filters, subset sums, marginals, engine."""

from __future__ import annotations

import pytest

from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError
from repro.query.engine import ExactQueryEngine, SketchQueryEngine
from repro.query.filters import (
    everything,
    field_equals,
    field_in,
    field_predicate,
    in_set,
    where,
)
from repro.query.marginals import (
    MarginalCell,
    marginal_cells,
    one_way_marginal,
    relative_mse_by_size,
    two_way_marginal,
)
from repro.query.subset_sum import ExactAggregator, SubsetSumEstimator


class TestFilters:
    def test_where_and_everything(self):
        keep = where(lambda item: item > 3, "gt3")
        assert keep(5) and not keep(1)
        assert everything()(object())

    def test_in_set(self):
        keep = in_set({"a", "b"})
        assert keep("a") and not keep("c")

    def test_field_combinators(self):
        keep = field_equals(0, 3) & ~field_in(2, {7, 9})
        assert keep((3, 1, 5))
        assert not keep((3, 1, 7))
        assert not keep((4, 1, 5))
        either = field_equals(0, 1) | field_equals(0, 2)
        assert either((2, 0, 0))
        assert not either((3, 0, 0))

    def test_field_predicate_and_description(self):
        keep = field_predicate(1, lambda value: value >= 10, "big")
        assert keep((0, 12))
        assert not keep((0, 3))
        assert "field[1]" in keep.description


class TestSubsetSumEstimator:
    def test_from_mapping(self):
        estimator = SubsetSumEstimator({"a": 3.0, "b": 2.0})
        assert estimator.subset_sum(lambda item: item == "a") == 3.0
        assert estimator.total() == 5.0

    def test_from_sketch_uses_error_model(self):
        sketch = UnbiasedSpaceSaving(capacity=3, seed=0)
        sketch.extend(range(60))
        estimator = SubsetSumEstimator(sketch)
        result = estimator.subset_sum_with_error(lambda item: item < 30)
        assert result.variance > 0

    def test_mapping_source_has_zero_variance(self):
        estimator = SubsetSumEstimator({"a": 3.0})
        result = estimator.subset_sum_with_error(lambda item: True)
        assert result.variance == 0.0

    def test_invalid_source_rejected(self):
        with pytest.raises(InvalidParameterError):
            SubsetSumEstimator(42).subset_sum(lambda item: True)

    def test_group_by(self):
        estimator = SubsetSumEstimator({("x", 1): 2.0, ("x", 2): 3.0, ("y", 1): 4.0})
        grouped = estimator.group_by(lambda item: item[0])
        assert grouped == {"x": 5.0, "y": 4.0}
        filtered = estimator.filtered_group_by(
            lambda item: item[1] == 1, lambda item: item[0]
        )
        assert filtered == {"x": 2.0, "y": 4.0}


class TestExactAggregator:
    def test_exact_queries(self):
        aggregator = ExactAggregator({"a": 3, "b": 1})
        assert aggregator.subset_sum(lambda item: item == "a") == 3.0
        assert aggregator.total() == 4.0
        assert aggregator.count("b") == 1.0
        assert aggregator.group_by(lambda item: "all") == {"all": 4.0}

    def test_relative_error(self):
        aggregator = ExactAggregator({"a": 10})
        assert aggregator.relative_error(lambda item: item == "a", 12.0) == pytest.approx(0.2)
        assert aggregator.relative_error(lambda item: item == "zzz", 1.0) is None


class TestMarginals:
    def test_one_way_marginal(self):
        source = {("a", 1): 2.0, ("a", 2): 3.0, ("b", 1): 1.0}
        assert one_way_marginal(source, 0) == {"a": 5.0, "b": 1.0}
        with pytest.raises(InvalidParameterError):
            one_way_marginal(source, -1)

    def test_two_way_marginal(self):
        source = {("a", 1, "x"): 2.0, ("a", 1, "y"): 1.0, ("b", 2, "x"): 4.0}
        marginal = two_way_marginal(source, 0, 1)
        assert marginal[("a", 1)] == 3.0
        with pytest.raises(InvalidParameterError):
            two_way_marginal(source, 1, 1)

    def test_marginal_cells_join(self):
        estimated = {"a": 9.0, "c": 1.0}
        exact = {"a": 10.0, "b": 5.0}
        cells = {cell.key: cell for cell in marginal_cells(estimated, exact)}
        assert cells["a"].relative_error == pytest.approx(0.1)
        assert cells["b"].estimate == 0.0
        assert cells["c"].truth == 0.0
        assert cells["c"].relative_error is None

    def test_marginal_cells_min_truth_filter(self):
        estimated = {"a": 9.0}
        exact = {"a": 10.0, "tiny": 1.0}
        cells = marginal_cells(estimated, exact, min_truth=5.0)
        assert {cell.key for cell in cells} == {"a"}

    def test_marginal_cell_properties(self):
        cell = MarginalCell(key="k", estimate=8.0, truth=10.0)
        assert cell.error == 2.0
        assert cell.squared_error == 4.0

    def test_relative_mse_by_size(self):
        cells = [
            MarginalCell("small", estimate=5.0, truth=10.0),
            MarginalCell("large", estimate=95.0, truth=100.0),
        ]
        buckets = relative_mse_by_size(cells, bucket_edges=[20.0, 200.0])
        assert buckets[0][2] == 1 and buckets[1][2] == 1
        assert buckets[0][1] > buckets[1][1]
        with pytest.raises(InvalidParameterError):
            relative_mse_by_size(cells, bucket_edges=[])


class TestQueryEngine:
    def test_scalar_query_with_error(self):
        sketch = UnbiasedSpaceSaving(capacity=4, seed=1)
        sketch.extend(range(80))
        engine = SketchQueryEngine(sketch)
        result = engine.select_sum(where=lambda item: item < 40)
        assert not result.is_grouped
        assert result.value >= 0
        assert result.with_error.variance >= 0

    def test_grouped_query(self):
        engine = SketchQueryEngine({("a", 1): 2.0, ("b", 1): 3.0})
        result = engine.select_sum(group_by=lambda item: item[0])
        assert result.is_grouped
        assert result.groups == {"a": 2.0, "b": 3.0}
        with pytest.raises(ValueError):
            _ = result.value

    def test_scalar_result_has_no_groups(self):
        engine = SketchQueryEngine({"a": 1.0})
        result = engine.select_sum()
        with pytest.raises(ValueError):
            _ = result.groups

    def test_exact_engine_matches_truth(self):
        counts = {("a", 1): 5, ("a", 2): 3, ("b", 1): 2}
        engine = ExactQueryEngine(counts)
        assert engine.select_sum(where=lambda item: item[0] == "a").value == 8.0
        grouped = engine.select_sum(group_by=lambda item: item[0]).groups
        assert grouped == {"a": 8.0, "b": 2.0}
        assert engine.total() == 10.0

    def test_exact_engine_accepts_aggregator(self):
        engine = ExactQueryEngine(ExactAggregator({"a": 1}))
        assert engine.total() == 1.0

    def test_engine_total_matches_sketch(self):
        sketch = UnbiasedSpaceSaving(capacity=5, seed=2)
        sketch.extend(range(50))
        assert SketchQueryEngine(sketch).total() == pytest.approx(50.0)
