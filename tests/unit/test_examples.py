"""Tier-1 smoke tests: every example script must actually run.

The examples are the first code a new user executes; each one is run
here as a subprocess on a tiny input (the ``--rows`` flag exists for
exactly this) so a broken import, renamed API or stale call site fails
the tier-1 suite instead of the user's first five minutes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"


def run_example(script: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )


@pytest.mark.parametrize(
    ("script", "args", "expected_markers"),
    [
        (
            "quickstart.py",
            ("--rows", "2000"),
            ["total preserved exactly", "top 5 ads", "sharded backend"],
        ),
        (
            "trending_dashboard.py",
            ("--rows", "3000"),
            ["final boards", "window handed off as one sketch"],
        ),
        (
            "serve_quickstart.py",
            ("--rows", "3000"),
            ["producers", "restored server answers identically: True"],
        ),
    ],
)
def test_example_runs_on_tiny_input(script, args, expected_markers):
    result = run_example(script, *args)
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    for marker in expected_markers:
        assert marker in result.stdout, (
            f"{script}: expected {marker!r} in output\n{result.stdout}"
        )


def test_example_scripts_all_have_smoke_coverage():
    """New example scripts must be added to the smoke matrix above."""
    covered = {"quickstart.py", "trending_dashboard.py", "serve_quickstart.py"}
    # Long-running demo scripts excluded deliberately (no tiny-input mode).
    excluded = {
        "ad_click_features.py",
        "distributed_trending.py",
        "network_flow_monitoring.py",
    }
    present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert present - excluded == covered
