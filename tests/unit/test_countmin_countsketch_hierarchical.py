"""Unit tests for CountMin, Count Sketch and hierarchical heavy hitters."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.frequent.count_sketch import CountSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.hierarchical import HierarchicalHeavyHitters


class TestCountMin:
    def test_geometry_from_epsilon_delta(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.05)
        assert sketch.width >= 272
        assert sketch.depth >= 3
        assert sketch.memory_cells() == sketch.width * sketch.depth

    def test_explicit_geometry(self):
        sketch = CountMinSketch(width=64, depth=4)
        assert sketch.width == 64 and sketch.depth == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            CountMinSketch(epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            CountMinSketch(width=0, depth=1)

    def test_estimates_never_undercount(self):
        rows = ["hot"] * 50 + [f"c{i}" for i in range(200)]
        sketch = CountMinSketch(width=128, depth=4, seed=0)
        sketch.extend(rows)
        truth = Counter(rows)
        for item in truth:
            assert sketch.estimate(item) >= truth[item]

    def test_overestimate_within_error_bound_typically(self):
        rows = ["hot"] * 100 + [f"c{i}" for i in range(300)]
        sketch = CountMinSketch(width=256, depth=5, seed=1)
        sketch.extend(rows)
        assert sketch.estimate("hot") - 100 <= sketch.error_bound()

    def test_deletions_rejected(self):
        with pytest.raises(UnsupportedUpdateError):
            CountMinSketch(width=8, depth=2).update("a", -1)

    def test_conservative_update_never_larger_than_plain(self):
        rows = [f"i{k % 30}" for k in range(500)]
        plain = CountMinSketch(width=32, depth=3, seed=2)
        conservative = CountMinSketch(width=32, depth=3, conservative=True, seed=2)
        plain.extend(rows)
        conservative.extend(rows)
        for item in set(rows):
            assert conservative.estimate(item) <= plain.estimate(item)
            assert conservative.estimate(item) >= Counter(rows)[item]

    def test_heavy_hitter_tracking(self):
        rows = ["hot"] * 200 + [f"c{i}" for i in range(100)]
        sketch = CountMinSketch(width=128, depth=4, track_heavy_hitters=10, seed=3)
        sketch.extend(rows)
        assert "hot" in sketch.heavy_hitters(0.3)

    def test_heavy_hitters_requires_tracking(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.update("a")
        with pytest.raises(InvalidParameterError):
            sketch.heavy_hitters(0.1)

    def test_inner_product_requires_matching_geometry(self):
        first = CountMinSketch(width=32, depth=3, seed=0)
        second = CountMinSketch(width=64, depth=3, seed=0)
        with pytest.raises(InvalidParameterError):
            first.inner_product(second)

    def test_inner_product_upper_bounds_join_size(self):
        left_rows = ["a"] * 10 + ["b"] * 5
        right_rows = ["a"] * 2 + ["c"] * 7
        left = CountMinSketch(width=64, depth=3, seed=5)
        right = CountMinSketch(width=64, depth=3, seed=5)
        left.extend(left_rows)
        right.extend(right_rows)
        true_join = 10 * 2
        assert left.inner_product(right) >= true_join


class TestCountSketch:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(InvalidParameterError):
            CountSketch(width=0)

    def test_estimate_close_for_dominant_item(self):
        rows = ["hot"] * 200 + [f"c{i}" for i in range(50)]
        sketch = CountSketch(width=128, depth=5, seed=0)
        sketch.extend(rows)
        assert sketch.estimate("hot") == pytest.approx(200, abs=30)

    def test_signed_updates_supported(self):
        sketch = CountSketch(width=64, depth=5, seed=1)
        sketch.update("a", 10)
        sketch.update("a", -4)
        assert sketch.estimate("a") == pytest.approx(6, abs=5)

    def test_second_moment_estimate(self):
        rows = ["a"] * 30 + ["b"] * 20 + ["c"] * 10
        sketch = CountSketch(width=256, depth=7, seed=2)
        sketch.extend(rows)
        true_f2 = 30**2 + 20**2 + 10**2
        assert sketch.second_moment() == pytest.approx(true_f2, rel=0.35)

    def test_inner_product_requires_matching_config(self):
        with pytest.raises(InvalidParameterError):
            CountSketch(width=32, seed=0).inner_product(CountSketch(width=64, seed=0))

    def test_estimates_with_explicit_candidates(self):
        sketch = CountSketch(width=64, depth=5, seed=3)
        sketch.extend(["x"] * 5 + ["y"] * 2)
        estimates = sketch.estimates(candidates=["x", "y", "z"])
        assert set(estimates) == {"x", "y", "z"}

    def test_row_estimates_length(self):
        sketch = CountSketch(width=16, depth=4, seed=4)
        sketch.update("a")
        assert len(sketch.row_estimates("a")) == 4


class TestHierarchicalHeavyHitters:
    def test_depth_validation(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalHeavyHitters(depth=0, capacity=4)
        with pytest.raises(InvalidParameterError):
            HierarchicalHeavyHitters(depth=3, capacity=[4, 4])

    def test_path_length_enforced(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=4)
        with pytest.raises(InvalidParameterError):
            hhh.update(("only-one",))

    def test_prefix_estimates_aggregate_children(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=16, seed=0)
        hhh.update(("10", "1"))
        hhh.update(("10", "2"))
        hhh.update(("20", "1"))
        assert hhh.estimate(("10",)) == pytest.approx(2.0)
        assert hhh.estimate(("10", "1")) == pytest.approx(1.0)

    def test_prefix_length_validated(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=4)
        hhh.update(("a", "b"))
        with pytest.raises(InvalidParameterError):
            hhh.estimate(())
        with pytest.raises(InvalidParameterError):
            hhh.estimate(("a", "b", "c"))

    def test_heavy_prefixes_found(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=16, seed=1)
        for _ in range(30):
            hhh.update(("popular", "x"))
        for index in range(20):
            hhh.update((f"rare{index}", "y"))
        heavy = hhh.heavy_prefixes(level=0, phi=0.3)
        assert ("popular",) in heavy

    def test_hierarchical_heavy_hitters_discounting(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=32, seed=2)
        # One child dominates its parent entirely.
        for _ in range(40):
            hhh.update(("net", "host1"))
        for index in range(10):
            hhh.update(("net", f"h{index}"))
        reported = hhh.hierarchical_heavy_hitters(phi=0.25)
        assert ("net", "host1") in reported
        # The parent's discounted count (50 - 40 = 10) is below 25% of 50.
        assert ("net",) not in reported or reported[("net",)] < 0.5 * 50

    def test_rollup(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=16, seed=3)
        hhh.update(("a", "x"))
        hhh.update(("a", "y"))
        hhh.update(("b", "x"))
        rolled = hhh.rollup(level=1)
        assert rolled[("a",)] == pytest.approx(2.0)
        assert rolled[("b",)] == pytest.approx(1.0)

    def test_extend_with_weights(self):
        hhh = HierarchicalHeavyHitters(depth=2, capacity=8, seed=4)
        hhh.extend([(("a", "x"), 2.0), ("b", "y")])
        assert hhh.rows_processed == 2
        assert hhh.estimate(("a",)) == pytest.approx(2.0)
